"""Trace exporters: JSONL, Chrome trace-event format, and fingerprints.

All three are **canonical**: attribute keys are sorted, JSON is emitted
with a fixed separator style, and nothing derived from wall time or
object identity is ever written.  Two same-seed runs therefore export
byte-identical traces, and :func:`trace_fingerprint` (SHA-256 over the
JSONL form) makes that comparable with a single string — the same
discipline the server applies to its schedule trace.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable


def _json_safe(value: object) -> object:
    """Coerce an attribute value to something JSON can encode canonically."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    return str(value)


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _span_record(span) -> dict:
    return {
        "span": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "attributes": {k: _json_safe(v) for k, v in span.attributes.items()},
        "events": [
            {
                "t": event.time,
                "name": event.name,
                "attributes": {k: _json_safe(v) for k, v in event.attributes},
            }
            for event in span.events
        ],
    }


def jsonl_trace(tracer) -> str:
    """The whole trace as JSON Lines: one span per line (opening order),
    then any orphan events.  Ends with a newline when non-empty."""
    lines = [_dumps(_span_record(span)) for span in tracer.spans]
    for event in tracer.orphan_events:
        lines.append(
            _dumps(
                {
                    "event": event.name,
                    "t": event.time,
                    "attributes": {k: _json_safe(v) for k, v in event.attributes},
                }
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer, path) -> None:
    """Write the JSONL trace to ``path`` (a str or Path)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(jsonl_trace(tracer))


def trace_fingerprint(tracer) -> str:
    """SHA-256 over the canonical JSONL export.

    Same-seed runs must produce equal fingerprints; a mismatch means the
    runs diverged somewhere, and the JSONL diff says exactly where.
    """
    return hashlib.sha256(jsonl_trace(tracer).encode()).hexdigest()


# -- Chrome trace-event format -----------------------------------------------------

#: Simulated seconds are scaled to microseconds for chrome://tracing.
_US = 1_000_000


def _tid_mapping(spans: Iterable) -> dict[str, int]:
    """Stable session-name → thread-id mapping (sorted names, tid 1+)."""
    names = sorted(
        {
            str(span.attributes["session"])
            for span in spans
            if span.attributes.get("session")
        }
    )
    return {name: index + 1 for index, name in enumerate(names)}


def chrome_trace(tracer) -> str:
    """The trace in Chrome trace-event format (load in chrome://tracing
    or Perfetto).  Spans become complete ("X") events on a per-session
    thread lane; span events become instants ("i")."""
    tids = _tid_mapping(tracer.spans)
    records: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "braid (simulated time)"},
        }
    ]
    for name, tid in tids.items():
        records.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": f"session {name}"},
            }
        )
    for span in tracer.spans:
        tid = tids.get(str(span.attributes.get("session", "")), 0)
        end = span.end if span.end is not None else span.start
        records.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "name": span.name,
                "ts": span.start * _US,
                "dur": (end - span.start) * _US,
                "args": {k: _json_safe(v) for k, v in span.attributes.items()},
            }
        )
        for event in span.events:
            records.append(
                {
                    "ph": "i",
                    "pid": 1,
                    "tid": tid,
                    "name": event.name,
                    "ts": event.time * _US,
                    "s": "t",
                    "args": {k: _json_safe(v) for k, v in event.attributes},
                }
            )
    for event in tracer.orphan_events:
        records.append(
            {
                "ph": "i",
                "pid": 1,
                "tid": 0,
                "name": event.name,
                "ts": event.time * _US,
                "s": "g",
                "args": {k: _json_safe(v) for k, v in event.attributes},
            }
        )
    return _dumps({"traceEvents": records, "displayTimeUnit": "ms"})


def write_chrome(tracer, path) -> None:
    """Write the Chrome trace-event export to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace(tracer))
