"""Continuous telemetry: deterministic time series over the Metrics ledger.

End-of-run counter totals say *what* a run cost; they cannot say *when*.
:class:`MetricsSampler` snapshots a :class:`~repro.common.metrics.Metrics`
ledger on a fixed :class:`~repro.common.clock.SimClock` cadence, turning
the ledger into a time series: counters as per-interval **deltas**,
high-water gauges as absolute levels, histograms as cumulative summaries,
and every direct child scope (server sessions, federated backends) as its
own delta/gauge block.

Everything is **read-only over the ledger** (snapshots and summary
copies; the sampler never mutates counters or histograms, never touches
the clock, and never emits trace events) and **deterministic**: the clock
is simulated, so the same seed produces byte-identical series.  The JSONL
export is canonical (sorted keys, fixed separators) and round-trippable
through :func:`load_series` / :func:`dump_series`;
:meth:`MetricsSampler.fingerprint` is the SHA-256 the E-series asserts on.

The sampler is *pulled*, not scheduled: call :meth:`maybe_sample` at
natural quiesce points (the server does so after every scheduler step).
A sample is taken when simulated time has crossed the next cadence
boundary since the last one; the sample is stamped with both the boundary
that made it due and the actual simulated time it was taken at.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.metrics import GAUGE_SUFFIX, Metrics

#: Format tag in the series header line, bumped on incompatible changes.
SERIES_VERSION = 1


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _split_gauges(
    snapshot: dict[str, float]
) -> tuple[dict[str, float], dict[str, float]]:
    """Partition a counter snapshot into (accumulating, gauges)."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    for name, value in snapshot.items():
        if name.endswith(GAUGE_SUFFIX):
            gauges[name] = value
        else:
            counters[name] = value
    return counters, gauges


def _deltas(now: dict[str, float], earlier: dict[str, float]) -> dict[str, float]:
    """Non-zero counter deltas since ``earlier`` (sorted by name)."""
    out: dict[str, float] = {}
    for name in sorted(set(now) | set(earlier)):
        delta = now.get(name, 0) - earlier.get(name, 0)
        if delta:
            out[name] = delta
    return out


@dataclass(frozen=True)
class TelemetrySample:
    """One point of the series.

    ``deltas`` are counter increments since the previous sample (or since
    the sampler was attached, for the first one); ``gauges`` are absolute
    high-water levels; ``histograms`` are cumulative summaries; ``scopes``
    holds the same delta/gauge split per direct child scope.
    """

    index: int
    #: Simulated time the sample was actually taken at.
    time: float
    #: The cadence boundary that made this sample due (``<= time``).
    due: float
    deltas: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    scopes: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: Optional label for forced samples ("final", say); "" for cadence ones.
    label: str = ""

    def to_record(self) -> dict:
        return {
            "sample": self.index,
            "t": self.time,
            "due": self.due,
            "label": self.label,
            "deltas": dict(sorted(self.deltas.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: dict(sorted(summary.items()))
                for name, summary in sorted(self.histograms.items())
            },
            "scopes": {
                scope: {
                    kind: dict(sorted(values.items()))
                    for kind, values in sorted(blocks.items())
                }
                for scope, blocks in sorted(self.scopes.items())
            },
        }

    @classmethod
    def from_record(cls, record: dict) -> "TelemetrySample":
        return cls(
            index=record["sample"],
            time=record["t"],
            due=record["due"],
            label=record.get("label", ""),
            deltas=dict(record.get("deltas", {})),
            gauges=dict(record.get("gauges", {})),
            histograms={
                name: dict(summary)
                for name, summary in record.get("histograms", {}).items()
            },
            scopes={
                scope: {kind: dict(values) for kind, values in blocks.items()}
                for scope, blocks in record.get("scopes", {}).items()
            },
        )


class MetricsSampler:
    """Samples a Metrics ledger into a deterministic time series."""

    def __init__(
        self,
        metrics: Metrics,
        clock: SimClock,
        interval: float,
        include_scopes: bool = True,
    ):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.metrics = metrics
        self.clock = clock
        self.interval = float(interval)
        self.include_scopes = include_scopes
        self.samples: list[TelemetrySample] = []
        #: Counter state at the previous sample (gauges excluded).
        self._last_counters, _ = _split_gauges(metrics.snapshot())
        #: Per-scope counter state at the previous sample.
        self._last_scope_counters: dict[str, dict[str, float]] = {}
        if include_scopes:
            for name, scope in sorted(metrics.scopes().items()):
                self._last_scope_counters[name], _ = _split_gauges(scope.snapshot())
        #: The first cadence boundary not yet sampled.
        self._next_due = self._boundary_after(clock.now)

    def _boundary_after(self, t: float) -> float:
        """The first cadence boundary strictly after simulated time ``t``."""
        steps = int(t / self.interval) + 1
        boundary = steps * self.interval
        # Float guard: never return a boundary at or before t.
        while boundary <= t:
            steps += 1
            boundary = steps * self.interval
        return boundary

    # -- sampling -----------------------------------------------------------------
    def maybe_sample(self) -> TelemetrySample | None:
        """Take a sample if simulated time has crossed the next cadence
        boundary; returns it (or None when not yet due).

        When a single burst of work jumps the clock past several
        boundaries, **one** sample is taken (the ledger's state at the
        skipped boundaries is unknowable after the fact) and the cadence
        resumes at the first boundary after now — deterministic, and
        honest about when the observation was actually made.
        """
        now = self.clock.now
        if now < self._next_due:
            return None
        due = self._next_due
        self._next_due = self._boundary_after(now)
        return self._take(due=due, label="")

    def sample_now(self, label: str = "forced") -> TelemetrySample:
        """Take an out-of-cadence sample right now (e.g. a final flush)."""
        return self._take(due=self.clock.now, label=label)

    def _take(self, due: float, label: str) -> TelemetrySample:
        counters, gauges = _split_gauges(self.metrics.snapshot())
        scopes: dict[str, dict[str, dict[str, float]]] = {}
        if self.include_scopes:
            for name, scope in sorted(self.metrics.scopes().items()):
                scope_counters, scope_gauges = _split_gauges(scope.snapshot())
                earlier = self._last_scope_counters.get(name, {})
                scope_deltas = _deltas(scope_counters, earlier)
                self._last_scope_counters[name] = scope_counters
                if scope_deltas or scope_gauges:
                    scopes[name] = {"deltas": scope_deltas, "gauges": scope_gauges}
        sample = TelemetrySample(
            index=len(self.samples),
            time=self.clock.now,
            due=due,
            label=label,
            deltas=_deltas(counters, self._last_counters),
            gauges=gauges,
            histograms=self.metrics.histogram_summaries(),
            scopes=scopes,
        )
        self._last_counters = counters
        self.samples.append(sample)
        return sample

    # -- export -------------------------------------------------------------------
    def header(self) -> dict:
        return {
            "series": "telemetry",
            "version": SERIES_VERSION,
            "interval": self.interval,
            "scope": self.metrics.scope_name,
        }

    def to_jsonl(self) -> str:
        """The series as canonical JSON Lines: a header line, then one
        line per sample.  Byte-identical across same-seed runs."""
        return dump_series(self.header(), self.samples)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSONL export."""
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()

    def write(self, path) -> None:
        """Write the JSONL series to ``path`` (a str or Path)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


def dump_series(header: dict, samples: list[TelemetrySample]) -> str:
    """Serialize a telemetry series canonically (header + one line per
    sample, trailing newline)."""
    lines = [_canonical(header)]
    lines.extend(_canonical(sample.to_record()) for sample in samples)
    return "\n".join(lines) + "\n"


def load_series(text: str) -> tuple[dict, list[TelemetrySample]]:
    """Parse a JSONL telemetry series back into (header, samples).

    Round-trip guarantee: ``dump_series(*load_series(text)) == text`` for
    any text produced by :func:`dump_series`.
    """
    header: dict = {}
    samples: list[TelemetrySample] = []
    for number, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "series" in record:
            header = record
        elif "sample" in record:
            samples.append(TelemetrySample.from_record(record))
        else:
            raise ValueError(f"line {number + 1}: not a telemetry record")
    return header, samples
