"""Deterministic observability for the BrAID bridge.

* :class:`~repro.obs.tracer.Tracer` — hierarchical spans and events
  stamped with simulated time; :meth:`Tracer.disabled` is the zero-cost
  opt-out every component defaults to.
* :mod:`repro.obs.export` — canonical JSONL, Chrome trace-event format,
  and SHA-256 trace fingerprints (same seed → same bytes).
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_trace,
    trace_fingerprint,
    write_chrome,
    write_jsonl,
)
from repro.obs.tracer import Span, SpanEvent, Tracer

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "chrome_trace",
    "jsonl_trace",
    "trace_fingerprint",
    "write_chrome",
    "write_jsonl",
]
