"""Deterministic observability for the BrAID bridge.

* :class:`~repro.obs.tracer.Tracer` — hierarchical spans and events
  stamped with simulated time; :meth:`Tracer.disabled` is the zero-cost
  opt-out every component defaults to.
* :mod:`repro.obs.export` — canonical JSONL, Chrome trace-event format,
  and SHA-256 trace fingerprints (same seed → same bytes).
* :mod:`repro.obs.telemetry` — fixed-cadence time-series sampling of the
  metrics ledger (counter deltas, gauges, histogram percentiles).
* :mod:`repro.obs.profile` — trace-driven critical-path profiler
  attributing each query's simulated time to phases.
* :mod:`repro.obs.slo` — sliding-window p50/p99 SLO monitors with
  edge-triggered breach events.
* :mod:`repro.obs.regress` — the benchmark regression gate comparing a
  fresh ``BENCH_summary.json`` against a committed baseline.
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_trace,
    trace_fingerprint,
    write_chrome,
    write_jsonl,
)
from repro.obs.profile import PHASES, QueryProfile, TraceProfile, profile_trace
from repro.obs.regress import RegressionReport, compare, make_baseline
from repro.obs.slo import SLOMonitor, SLOPolicy
from repro.obs.telemetry import (
    MetricsSampler,
    TelemetrySample,
    dump_series,
    load_series,
)
from repro.obs.tracer import Span, SpanEvent, Tracer

__all__ = [
    "MetricsSampler",
    "PHASES",
    "QueryProfile",
    "RegressionReport",
    "SLOMonitor",
    "SLOPolicy",
    "Span",
    "SpanEvent",
    "TelemetrySample",
    "TraceProfile",
    "Tracer",
    "chrome_trace",
    "compare",
    "dump_series",
    "jsonl_trace",
    "load_series",
    "make_baseline",
    "profile_trace",
    "trace_fingerprint",
    "write_chrome",
    "write_jsonl",
]
