"""Sliding-window SLO monitors over simulated latencies.

An :class:`SLOMonitor` watches per-scope latency streams (one scope per
server session, one per federated backend) against an :class:`SLOPolicy`
(p50/p99 targets).  Windowing is deterministic: observations are stamped
with simulated time, and a window keeps exactly the observations with
``t > now - window_seconds`` — same seed, same evictions, same
percentiles.

Breaches are **edge-triggered**: when a watched percentile first exceeds
its target the monitor emits one ``slo.breach`` trace event and bumps the
:data:`~repro.common.metrics.SLO_BREACHES` counter; while the scope stays
in breach nothing further is emitted, and recovery (the percentile
dropping back under target with enough samples) emits ``slo.recovered``
and re-arms the trigger.  Percentiles reuse the ledger's nearest-rank
:class:`~repro.common.metrics.Histogram`, so an SLO evaluation and a
histogram summary can never disagree about what "p99" means.

The monitor never touches the clock: observing is bookkeeping, not work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.clock import SimClock
from repro.common.metrics import SLO_BREACHES, Histogram, Metrics


@dataclass(frozen=True)
class SLOPolicy:
    """Latency objectives for one monitor (None disables a percentile)."""

    p50_seconds: float | None = None
    p99_seconds: float | None = None
    #: Sliding window length in simulated seconds.
    window_seconds: float = 60.0
    #: Percentiles are not evaluated until a window holds this many
    #: observations (a single slow request is not a p99 signal).
    min_samples: int = 5

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("SLO window must be positive")
        if self.min_samples < 1:
            raise ValueError("SLO min_samples must be at least 1")

    def targets(self) -> list[tuple[int, float]]:
        """The watched (percentile, target) pairs, in percentile order."""
        out: list[tuple[int, float]] = []
        if self.p50_seconds is not None:
            out.append((50, self.p50_seconds))
        if self.p99_seconds is not None:
            out.append((99, self.p99_seconds))
        return out


class _Window:
    """One scope's sliding window of (time, latency) observations."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: deque[tuple[float, float]] = deque()

    def add(self, t: float, value: float) -> None:
        self.entries.append((t, value))

    def prune(self, now: float, window_seconds: float) -> None:
        cutoff = now - window_seconds
        while self.entries and self.entries[0][0] <= cutoff:
            self.entries.popleft()

    def histogram(self) -> Histogram:
        h = Histogram()
        for _t, value in self.entries:
            h.observe(value)
        return h


class SLOMonitor:
    """Evaluates one policy over many named scopes."""

    def __init__(
        self,
        policy: SLOPolicy,
        clock: SimClock,
        metrics: Metrics | None = None,
        tracer=None,
    ):
        self.policy = policy
        self.clock = clock
        self.metrics = metrics
        if tracer is None:
            from repro.obs.tracer import Tracer

            tracer = Tracer.disabled()
        self.tracer = tracer
        self._windows: dict[str, _Window] = {}
        #: Armed/breached state per (scope, percentile).
        self._breached: dict[tuple[str, int], bool] = {}
        self.breach_count = 0

    # -- observation --------------------------------------------------------------
    def observe(self, scope: str, latency_seconds: float) -> None:
        """Record one latency for ``scope`` and re-evaluate its window."""
        now = self.clock.now
        window = self._windows.get(scope)
        if window is None:
            window = self._windows[scope] = _Window()
        window.add(now, latency_seconds)
        window.prune(now, self.policy.window_seconds)
        self._evaluate(scope, window, now)

    def _evaluate(self, scope: str, window: _Window, now: float) -> None:
        if len(window.entries) < self.policy.min_samples:
            return
        histogram = window.histogram()
        for percentile, target in self.policy.targets():
            value = histogram.percentile(percentile)
            key = (scope, percentile)
            breached = value > target
            was = self._breached.get(key, False)
            if breached and not was:
                self._breached[key] = True
                self.breach_count += 1
                if self.metrics is not None:
                    self.metrics.incr(SLO_BREACHES)
                self.tracer.event(
                    "slo.breach",
                    scope=scope,
                    percentile=percentile,
                    value=value,
                    target=target,
                    samples=len(window.entries),
                )
            elif was and not breached:
                self._breached[key] = False
                self.tracer.event(
                    "slo.recovered",
                    scope=scope,
                    percentile=percentile,
                    value=value,
                    target=target,
                    samples=len(window.entries),
                )

    # -- reporting ----------------------------------------------------------------
    def in_breach(self, scope: str, percentile: int) -> bool:
        """True while the scope's percentile sits above its target."""
        return self._breached.get((scope, percentile), False)

    def report(self) -> dict[str, dict[str, float]]:
        """Current per-scope window statistics (deterministic order)."""
        out: dict[str, dict[str, float]] = {}
        for scope in sorted(self._windows):
            histogram = self._windows[scope].histogram()
            entry: dict[str, float] = {
                "samples": histogram.count,
                "p50": histogram.percentile(50),
                "p99": histogram.percentile(99),
            }
            for percentile, _target in self.policy.targets():
                entry[f"breach_p{percentile}"] = self.in_breach(scope, percentile)
            out[scope] = entry
        return out

    def overall(self) -> Histogram:
        """All scopes' current windows merged into one histogram
        (:meth:`Histogram.merge` keeps the order deterministic)."""
        merged = Histogram()
        for scope in sorted(self._windows):
            merged.merge(self._windows[scope].histogram())
        return merged
