"""Trace-driven critical-path profiler: where does simulated time go?

Consumes a span trace (a :class:`~repro.obs.tracer.Tracer`, its JSONL
export, or parsed records) and attributes every top-level ``cms.query``
span's simulated time to **phases**:

========  =======================================================
plan      ``planner.plan`` (strategy choice, subsumption probes)
cache     cache-track derivation (exact hits, full-match derivations,
          the local side of a parallel region)
remote    ``rdi.fetch`` / ``rdi.fetch_table`` / ``rdi.fetch_batch``
          round trips, net of retry backoff
retry     backoff seconds re-attributed from ``rdi.retry`` events
gather    the executor's combine/gather work around hybrid and
          remote plans (joins, projections, binding extraction)
compute   everything charged directly inside ``cms.query`` (residue
          evaluation, stream bookkeeping, nested sub-queries' shells)
========  =======================================================

Attribution is an **exact partition**: each span's *self time* is its
duration minus the summed durations of its children, assigned to the
span's phase; children recurse.  The per-phase totals of one query
therefore sum to the query span's duration — which equals the
``cms.query_sim_seconds`` histogram observation for that query — to
float tolerance, with nothing double-counted and nothing dropped.

Two span shapes need care:

* ``executor.parallel_tracks`` wraps a frozen-clock parallel region, so
  its children have zero duration and its own duration is the *merged*
  (max-track) advance.  The whole span is attributed to the phase of the
  dominant track (``track.*`` attributes recorded at region exit):
  ``remote``-rooted tracks → remote, anything else → cache.
* ``rdi.retry`` events carry ``backoff_seconds``; their sum (clamped to
  the owning fetch span's self time) moves from remote to retry.

The profiler is read-only and deterministic; rendering is flame-style
text bars plus a canonical JSON form for ``scripts/braid_profile.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Attribution buckets, in rendering order.
PHASES = ("plan", "cache", "remote", "retry", "gather", "compute")

#: Span names fetched over the wire (the remote phase).
_FETCH_SPANS = frozenset({"rdi.fetch", "rdi.fetch_table", "rdi.fetch_batch"})

#: Executor strategies whose residual work is cache-track derivation.
_CACHE_STRATEGIES = frozenset({"exact", "cache-full", "unit", "unsatisfiable"})


def spans_from_tracer(tracer) -> list[dict]:
    """A tracer's spans as the same records its JSONL export carries."""
    from repro.obs.export import _span_record

    return [_span_record(span) for span in tracer.spans]


def load_spans(text: str) -> list[dict]:
    """Span records from a JSONL trace (orphan-event lines are skipped)."""
    spans: list[dict] = []
    for number, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {number + 1}: not valid JSON ({error})")
        if "span" in record:
            spans.append(record)
    return spans


def _duration(span: dict) -> float:
    end = span.get("end")
    if end is None:
        return 0.0
    return end - span.get("start", 0.0)


def _classify(span: dict) -> str | None:
    """The phase owning this span's self time (None: inherit parent)."""
    name = span.get("name", "")
    if name == "planner.plan":
        return "plan"
    if name in _FETCH_SPANS:
        return "remote"
    if name == "executor.parallel_tracks":
        tracks = {
            key[len("track."):]: value
            for key, value in span.get("attributes", {}).items()
            if key.startswith("track.") and isinstance(value, (int, float))
        }
        if tracks:
            dominant = max(sorted(tracks), key=lambda t: (tracks[t], t))
            return "remote" if dominant.startswith("remote") else "cache"
        return "cache"
    if name == "executor.execute":
        strategy = span.get("attributes", {}).get("strategy", "")
        return "cache" if strategy in _CACHE_STRATEGIES else "gather"
    if name == "cms.query":
        return "compute"
    return None


def _retry_seconds(span: dict) -> float:
    """Summed backoff of ``rdi.retry`` events recorded on this span."""
    total = 0.0
    for event in span.get("events", []):
        if event.get("name") == "rdi.retry":
            backoff = event.get("attributes", {}).get("backoff_seconds", 0.0)
            if isinstance(backoff, (int, float)):
                total += backoff
    return total


@dataclass
class QueryProfile:
    """One top-level query's phase breakdown."""

    view: str
    session: str
    start: float
    duration: float
    phases: dict[str, float] = field(default_factory=dict)
    #: Seconds the parallel region saved versus sequential execution
    #: (summed ``overlap_saved_seconds`` over the query's regions).
    overlap_saved: float = 0.0

    def to_dict(self) -> dict:
        return {
            "view": self.view,
            "session": self.session,
            "start": self.start,
            "duration": self.duration,
            "phases": {p: self.phases.get(p, 0.0) for p in PHASES},
            "overlap_saved": self.overlap_saved,
        }


@dataclass
class TraceProfile:
    """The whole trace's attribution: per-query profiles plus rollups."""

    queries: list[QueryProfile] = field(default_factory=list)
    totals: dict[str, float] = field(default_factory=dict)
    #: Remote time/tuples per fetched sub-query view, heaviest first.
    hot_remote: list[dict] = field(default_factory=list)
    #: Base tables by routed-request count (``rdi.route`` events), then
    #: per-table fetch spans, busiest first.
    hot_tables: list[dict] = field(default_factory=list)
    #: Cache elements by plan references + subsumption matches.
    hot_elements: list[dict] = field(default_factory=list)
    #: Spans that never finished (excluded from attribution).
    unfinished: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(q.duration for q in self.queries)

    def to_dict(self) -> dict:
        return {
            "queries": [q.to_dict() for q in self.queries],
            "totals": {p: self.totals.get(p, 0.0) for p in PHASES},
            "total_seconds": self.total_seconds,
            "hot_remote": list(self.hot_remote),
            "hot_tables": list(self.hot_tables),
            "hot_elements": list(self.hot_elements),
            "unfinished": self.unfinished,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    # -- rendering ---------------------------------------------------------------
    def render(self, top: int = 10, per_query: bool = True) -> str:
        lines: list[str] = []
        total = self.total_seconds
        lines.append(
            f"profile: {len(self.queries)} queries, "
            f"{total:.6f}s simulated"
            + (f" ({self.unfinished} unfinished spans skipped)"
               if self.unfinished else "")
        )
        lines.append("")
        lines.append("phase totals:")
        lines.extend(_bars(self.totals, total))
        if per_query and self.queries:
            for profile in self.queries:
                lines.append("")
                lines.append(
                    f"query {profile.view} (session {profile.session!r}) "
                    f"[{profile.start:.6f} +{profile.duration:.6f}s]"
                    + (f"  overlap_saved={profile.overlap_saved:.6f}s"
                       if profile.overlap_saved else "")
                )
                lines.extend(_bars(profile.phases, profile.duration))
        if self.hot_remote:
            lines.append("")
            lines.append(f"hot remote fetches (top {top}):")
            for entry in self.hot_remote[:top]:
                lines.append(
                    f"  {entry['view']:<28} {entry['seconds']:.6f}s  "
                    f"fetches={entry['count']}  tuples={entry['tuples']}"
                )
        if self.hot_tables:
            lines.append("")
            lines.append(f"hot base tables (top {top}):")
            for entry in self.hot_tables[:top]:
                lines.append(
                    f"  {entry['table']:<28} requests={entry['count']}"
                )
        if self.hot_elements:
            lines.append("")
            lines.append(f"hot cache elements (top {top}):")
            for entry in self.hot_elements[:top]:
                lines.append(
                    f"  {entry['element']:<6} plan_refs={entry['plan_refs']}  "
                    f"subsume_matches={entry['matches']}"
                )
        return "\n".join(lines)


def _bars(phases: dict[str, float], total: float, width: int = 24) -> list[str]:
    lines = []
    for phase in PHASES:
        seconds = phases.get(phase, 0.0)
        if not seconds:
            continue
        share = seconds / total if total > 0 else 0.0
        filled = int(round(share * width))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"  {phase:<8} {bar}  {seconds:.6f}s  {share * 100:5.1f}%")
    if not lines:
        lines.append("  (no finished time attributed)")
    return lines


def profile_trace(trace) -> TraceProfile:
    """Profile a trace: a Tracer, JSONL text, or a list of span records."""
    if isinstance(trace, str):
        spans = load_spans(trace)
    elif isinstance(trace, list):
        spans = trace
    else:
        spans = spans_from_tracer(trace)

    by_id = {span["span"]: span for span in spans}
    children: dict[object, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)

    profile = TraceProfile()
    hot_remote: dict[str, dict] = {}
    hot_tables: dict[str, int] = {}
    hot_elements: dict[str, dict] = {}

    def attribute(span: dict, inherited: str, out: dict[str, float],
                  query: QueryProfile) -> None:
        if span.get("end") is None:
            profile.unfinished += 1
            return
        phase = _classify(span)
        if phase is None:
            phase = inherited
        kids = children.get(span["span"], [])
        self_time = _duration(span) - sum(_duration(k) for k in kids)
        attrs = span.get("attributes", {})
        name = span.get("name", "")
        if name in _FETCH_SPANS:
            view = str(attrs.get("table") or attrs.get("view") or "?")
            entry = hot_remote.setdefault(
                view, {"view": view, "seconds": 0.0, "count": 0, "tuples": 0}
            )
            entry["seconds"] += _duration(span)
            entry["count"] += 1
            tuples = attrs.get("tuples")
            if isinstance(tuples, (int, float)):
                entry["tuples"] += int(tuples)
            if attrs.get("table"):
                hot_tables[str(attrs["table"])] = (
                    hot_tables.get(str(attrs["table"]), 0) + 1
                )
            retry = min(_retry_seconds(span), max(self_time, 0.0))
            if retry > 0:
                out["retry"] = out.get("retry", 0.0) + retry
                self_time -= retry
        if name == "planner.plan":
            for part in attrs.get("parts", []) or []:
                if isinstance(part, str) and part.startswith("cache:"):
                    element = part[len("cache:"):]
                    entry = hot_elements.setdefault(
                        element,
                        {"element": element, "plan_refs": 0, "matches": 0},
                    )
                    entry["plan_refs"] += 1
        for event in span.get("events", []):
            event_attrs = event.get("attributes", {})
            if event.get("name") == "rdi.route":
                for table in event_attrs.get("tables", []) or []:
                    hot_tables[str(table)] = hot_tables.get(str(table), 0) + 1
            elif event.get("name") == "subsume.match":
                element = str(event_attrs.get("element", "?"))
                entry = hot_elements.setdefault(
                    element, {"element": element, "plan_refs": 0, "matches": 0}
                )
                entry["matches"] += 1
        if name == "executor.parallel_tracks":
            saved = attrs.get("overlap_saved_seconds")
            if isinstance(saved, (int, float)):
                query.overlap_saved += saved
        out[phase] = out.get(phase, 0.0) + self_time
        for kid in kids:
            attribute(kid, phase, out, query)

    def is_top_level_query(span: dict) -> bool:
        if span.get("name") != "cms.query":
            return False
        parent = span.get("parent")
        while parent is not None:
            above = by_id.get(parent)
            if above is None:
                break
            if above.get("name") == "cms.query":
                return False
            parent = above.get("parent")
        return True

    for span in spans:
        if not is_top_level_query(span):
            continue
        if span.get("end") is None:
            profile.unfinished += 1
            continue
        attrs = span.get("attributes", {})
        query = QueryProfile(
            view=str(attrs.get("view", "?")),
            session=str(attrs.get("session", "")),
            start=span.get("start", 0.0),
            duration=_duration(span),
        )
        attribute(span, "compute", query.phases, query)
        profile.queries.append(query)
        for phase, seconds in query.phases.items():
            profile.totals[phase] = profile.totals.get(phase, 0.0) + seconds

    profile.hot_remote = sorted(
        hot_remote.values(), key=lambda e: (-e["seconds"], e["view"])
    )
    profile.hot_tables = [
        {"table": table, "count": count}
        for table, count in sorted(
            hot_tables.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    profile.hot_elements = sorted(
        hot_elements.values(),
        key=lambda e: (-(e["plan_refs"] + e["matches"]), e["element"]),
    )
    return profile
