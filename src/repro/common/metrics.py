"""Cost and event accounting shared by all BrAID components.

The paper measures the goodness of the CMS by "volume of communication
between the workstation and the remote system, computational demands made on
the database server, and computation that needs to be done by the
workstation".  :class:`Metrics` is the single ledger where every component
records those quantities, so experiments can report them directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Metrics:
    """A hierarchical counter ledger.

    Counters are named with dotted paths (``"remote.requests"``,
    ``"cache.hits.subsumed"``).  Components only ever increment counters;
    reports aggregate by prefix.

    A ledger can be subdivided into named child **scopes** (one per server
    session, say): a scope is itself a ``Metrics`` whose increments also
    flow into every ancestor, so the parent always holds the aggregate
    while each scope holds only its own share.  Two components given two
    different scopes can therefore never pollute each other's numbers.
    """

    counters: Counter = field(default_factory=Counter)
    #: Dotted path of this ledger within its registry ("" for a root).
    scope_name: str = ""
    parent: "Metrics | None" = field(default=None, repr=False, compare=False)
    _children: dict[str, "Metrics"] = field(
        default_factory=dict, repr=False, compare=False
    )

    def incr(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (may be fractional).

        The increment propagates to every ancestor scope, so roots hold
        aggregates over all their scopes.
        """
        self.counters[name] += amount
        if self.parent is not None:
            self.parent.incr(name, amount)

    # -- scopes --------------------------------------------------------------
    def scope(self, name: str) -> "Metrics":
        """The child scope called ``name`` (created on first use).

        Increments recorded in the child also land in this ledger (and its
        ancestors); the child's own counters cover only its share.
        """
        existing = self._children.get(name)
        if existing is not None:
            return existing
        child = Metrics(
            scope_name=f"{self.scope_name}.{name}" if self.scope_name else name,
            parent=self,
        )
        self._children[name] = child
        return child

    def scopes(self) -> dict[str, "Metrics"]:
        """All direct child scopes, by name."""
        return dict(self._children)

    def drop_scope(self, name: str) -> None:
        """Detach the child scope ``name`` (its past increments remain in
        this ledger's aggregate; future ones no longer propagate here)."""
        child = self._children.pop(name, None)
        if child is not None:
            child.parent = None

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def by_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose dotted name starts with ``prefix``."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: value
            for name, value in self.counters.items()
            if name == prefix or name.startswith(dotted)
        }

    def total(self, prefix: str) -> float:
        """Sum of all counters under ``prefix``."""
        return sum(self.by_prefix(prefix).values())

    def reset(self) -> None:
        """Zero every counter (in this ledger and every child scope)."""
        self.counters.clear()
        for child in self._children.values():
            child.reset()

    def snapshot(self) -> dict[str, float]:
        """An immutable copy of all counters, sorted by name."""
        return dict(sorted(self.counters.items()))

    def diff(self, earlier: dict[str, float]) -> dict[str, float]:
        """Counters that changed since ``earlier`` (a prior snapshot)."""
        out: dict[str, float] = {}
        for name, value in self.counters.items():
            delta = value - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self.counters.items()))

    def format(self, prefix: str = "") -> str:
        """Human-readable report, optionally restricted to ``prefix``."""
        items = self.by_prefix(prefix) if prefix else self.snapshot()
        if not items:
            return "(no metrics)"
        width = max(len(name) for name in items)
        lines = []
        for name in sorted(items):
            value = items[name]
            shown = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"{name:<{width}}  {shown}")
        return "\n".join(lines)


# Canonical counter names, collected here so components and tests agree.
REMOTE_REQUESTS = "remote.requests"
REMOTE_TUPLES = "remote.tuples_shipped"
REMOTE_SERVER_TUPLES = "remote.server_tuples_touched"
REMOTE_RETRIES = "remote.retries"
REMOTE_TIMEOUTS = "remote.timeouts"
REMOTE_FAULTS_INJECTED = "remote.faults_injected"
REMOTE_DEGRADED_ANSWERS = "remote.degraded_answers"
REMOTE_BREAKER_STATE_CHANGES = "remote.breaker_state_changes"
CACHE_HITS_EXACT = "cache.hits.exact"
CACHE_HITS_SUBSUMED = "cache.hits.subsumed"
CACHE_MISSES = "cache.misses"
CACHE_EVICTIONS = "cache.evictions"
CACHE_PREFETCHES = "cache.prefetches"
CACHE_GENERALIZATIONS = "cache.generalizations"
CACHE_INDEX_BUILDS = "cache.index_builds"
CACHE_TUPLES_PROCESSED = "cache.tuples_processed"
CACHE_PIN_DEFERRALS = "cache.pin_deferrals"
CACHE_STALE_REPLANS = "cache.stale_replans"
IE_INFERENCE_STEPS = "ie.inference_steps"
IE_CAQL_QUERIES = "ie.caql_queries"
LAZY_TUPLES_PRODUCED = "lazy.tuples_produced"
EAGER_TUPLES_PRODUCED = "eager.tuples_produced"
SERVER_SESSIONS_OPENED = "server.sessions_opened"
SERVER_SESSIONS_CLOSED = "server.sessions_closed"
SERVER_REQUESTS_ACCEPTED = "server.requests.accepted"
SERVER_REQUESTS_REJECTED = "server.requests.rejected"
SERVER_REQUESTS_COMPLETED = "server.requests.completed"
SERVER_SCHEDULER_STEPS = "server.scheduler_steps"
