"""Cost and event accounting shared by all BrAID components.

The paper measures the goodness of the CMS by "volume of communication
between the workstation and the remote system, computational demands made on
the database server, and computation that needs to be done by the
workstation".  :class:`Metrics` is the single ledger where every component
records those quantities, so experiments can report them directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator


class Histogram:
    """A value distribution: raw observations plus summary statistics.

    Counters answer "how much in total"; histograms answer "how was it
    distributed" — per-query latencies, tuples shipped per request,
    element sizes at eviction.  Observations are kept in arrival order
    (deterministic), and summaries are computed on demand from a sorted
    copy, so recording stays O(1) per observation.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the observations (p in [0, 100])."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def summary(self) -> dict[str, float]:
        """Count, total, min/mean/max, and p50/p90/p99 (zeros when empty)."""
        if not self.values:
            return {
                "count": 0, "total": 0.0, "min": 0.0, "mean": 0.0,
                "max": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
            }
        return {
            "count": len(self.values),
            "total": self.total,
            "min": min(self.values),
            "mean": self.total / len(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram.

        Observations keep arrival order (self's first, then other's), so
        merging the same histograms in the same order is deterministic.
        ``other`` is not modified.
        """
        self.values.extend(other.values)

    def copy(self) -> "Histogram":
        """An independent copy (mutating it never touches the original)."""
        fresh = Histogram()
        fresh.values = list(self.values)
        return fresh

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, total={self.total:.6g})"


def format_value(value: float) -> str:
    """Render a counter value: integer-valued floats print as integers
    (counters are floats, so ``1.0`` would otherwise print where ``1`` is
    meant — and large totals would degrade to exponent notation)."""
    if isinstance(value, float):
        if value.is_integer():
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


@dataclass
class Metrics:
    """A hierarchical counter/histogram/gauge ledger.

    Counters are named with dotted paths (``"remote.requests"``,
    ``"cache.hits.subsumed"``).  Components only ever increment counters;
    reports aggregate by prefix.  Histograms (:meth:`observe`) record
    distributions next to the counters, and :meth:`gauge_max` keeps
    high-water marks (queue depths, in-flight peaks).

    A ledger can be subdivided into named child **scopes** (one per server
    session, say): a scope is itself a ``Metrics`` whose increments also
    flow into every ancestor, so the parent always holds the aggregate
    while each scope holds only its own share.  Two components given two
    different scopes can therefore never pollute each other's numbers.
    """

    counters: Counter = field(default_factory=Counter)
    #: Dotted path of this ledger within its registry ("" for a root).
    scope_name: str = ""
    parent: "Metrics | None" = field(default=None, repr=False, compare=False)
    _children: dict[str, "Metrics"] = field(
        default_factory=dict, repr=False, compare=False
    )
    histograms: dict[str, Histogram] = field(
        default_factory=dict, repr=False, compare=False
    )

    def incr(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (may be fractional).

        The increment propagates to every ancestor scope, so roots hold
        aggregates over all their scopes.
        """
        self.counters[name] += amount
        if self.parent is not None:
            self.parent.incr(name, amount)

    def gauge_max(self, name: str, value: float) -> None:
        """Keep ``name`` at the maximum value ever reported (a high-water
        gauge).  Ancestors record the maximum over all their scopes."""
        if value > self.counters.get(name, 0):
            self.counters[name] = value
        if self.parent is not None:
            self.parent.gauge_max(name, value)

    # -- histograms ----------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name`` (created on first
        use).  Like counters, observations propagate to ancestor scopes."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)
        if self.parent is not None:
            self.parent.observe(name, value)

    def histogram(self, name: str) -> Histogram | None:
        """The histogram called ``name``, or None if nothing was observed."""
        return self.histograms.get(name)

    def histogram_summaries(self) -> dict[str, dict[str, float]]:
        """Summary statistics for every histogram, sorted by name."""
        return {
            name: self.histograms[name].summary()
            for name in sorted(self.histograms)
        }

    # -- scopes --------------------------------------------------------------
    def scope(self, name: str) -> "Metrics":
        """The child scope called ``name`` (created on first use).

        Increments recorded in the child also land in this ledger (and its
        ancestors); the child's own counters cover only its share.
        """
        existing = self._children.get(name)
        if existing is not None:
            return existing
        child = Metrics(
            scope_name=f"{self.scope_name}.{name}" if self.scope_name else name,
            parent=self,
        )
        self._children[name] = child
        return child

    def scopes(self) -> dict[str, "Metrics"]:
        """All direct child scopes, by name."""
        return dict(self._children)

    def drop_scope(self, name: str) -> None:
        """Detach the child scope ``name`` (its past increments remain in
        this ledger's aggregate; future ones no longer propagate here)."""
        child = self._children.pop(name, None)
        if child is not None:
            child.parent = None

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def by_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose dotted name starts with ``prefix``.

        A name equal to the prefix matches; the empty prefix matches
        every counter (so ``by_prefix("")`` is the whole ledger, not
        nothing).
        """
        if not prefix:
            return dict(self.counters)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: value
            for name, value in self.counters.items()
            if name == prefix or name.startswith(dotted)
        }

    def total(self, prefix: str) -> float:
        """Sum of all counters under ``prefix``."""
        return sum(self.by_prefix(prefix).values())

    def reset(self) -> None:
        """Zero every counter and histogram (in this ledger and every
        child scope)."""
        self.counters.clear()
        self.histograms.clear()
        for child in self._children.values():
            child.reset()

    def snapshot(self) -> dict[str, float]:
        """An immutable copy of all counters, sorted by name."""
        return dict(sorted(self.counters.items()))

    def diff(self, earlier: dict[str, float]) -> dict[str, float]:
        """Counters that changed since ``earlier`` (a prior snapshot).

        Counters present in ``earlier`` but since reset to zero show up
        as negative deltas — a ``diff`` after ``reset`` reports the drop
        rather than silently claiming nothing changed.
        """
        out: dict[str, float] = {}
        for name in sorted(set(self.counters) | set(earlier)):
            delta = self.counters.get(name, 0) - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self.counters.items()))

    def check_invariants(self) -> None:
        """Audit the ledger (cheap, read-only, recursive over scopes).

        Raises :class:`~repro.common.errors.InvariantViolation` on any
        negative or non-finite counter, a histogram whose bookkeeping
        disagrees with its observations, or a child scope whose parent
        pointer does not lead back here.  Counters only ever grow and
        observations are plain appends, so none of these can happen
        without a bug in the component doing the recording.

        Note there is no parent-equals-sum-of-children check: high-water
        gauges (:meth:`gauge_max`) keep the *max* over scopes, and a
        dropped scope leaves its past increments behind, so the aggregate
        is intentionally not a sum.
        """
        import math

        from repro.common.errors import InvariantViolation

        where = self.scope_name or "<root>"
        for name, value in self.counters.items():
            if not math.isfinite(value):
                raise InvariantViolation(
                    f"metrics {where}: counter {name!r} is non-finite ({value})"
                )
            if value < 0:
                raise InvariantViolation(
                    f"metrics {where}: counter {name!r} is negative ({value})"
                )
        for name, histogram in self.histograms.items():
            for value in histogram.values:
                if not math.isfinite(value):
                    raise InvariantViolation(
                        f"metrics {where}: histogram {name!r} holds a "
                        f"non-finite observation ({value})"
                    )
        for name, child in self._children.items():
            if child.parent is not self:
                raise InvariantViolation(
                    f"metrics {where}: scope {name!r} does not point back "
                    "to its parent"
                )
            child.check_invariants()

    def format(self, prefix: str = "") -> str:
        """Human-readable report, optionally restricted to ``prefix``.

        Values are right-aligned in one column and integer-valued floats
        print as integers, so counters line up regardless of whether a
        fractional increment ever touched them.
        """
        items = self.by_prefix(prefix)
        if not items:
            return "(no metrics)"
        shown = {name: format_value(value) for name, value in items.items()}
        width = max(len(name) for name in items)
        value_width = max(len(text) for text in shown.values())
        return "\n".join(
            f"{name:<{width}}  {shown[name]:>{value_width}}"
            for name in sorted(items)
        )


# Canonical counter names, collected here so components and tests agree.
REMOTE_REQUESTS = "remote.requests"
REMOTE_TUPLES = "remote.tuples_shipped"
REMOTE_SERVER_TUPLES = "remote.server_tuples_touched"
REMOTE_RETRIES = "remote.retries"
REMOTE_TIMEOUTS = "remote.timeouts"
REMOTE_FAULTS_INJECTED = "remote.faults_injected"
REMOTE_DEGRADED_ANSWERS = "remote.degraded_answers"
REMOTE_BREAKER_STATE_CHANGES = "remote.breaker_state_changes"
#: Binding values shipped workstation -> server in semijoin IN-lists.
REMOTE_BINDINGS_SHIPPED = "remote.bindings_shipped"
#: Remote fetches that were semijoin-reduced by a shipped binding set.
REMOTE_SEMIJOIN_REQUESTS = "remote.semijoin_requests"
#: DML requests that shared one round trip with at least one other.
REMOTE_BATCHED_REQUESTS = "remote.batched_requests"
CACHE_HITS_EXACT = "cache.hits.exact"
#: Exact hits served by the canonical tier: the stored definition was an
#: alpha-equivalent variant spelling, not structurally identical.
CACHE_HITS_CANONICAL = "cache.canonical_hits"
CACHE_HITS_SUBSUMED = "cache.hits.subsumed"
CACHE_MISSES = "cache.misses"
CACHE_EVICTIONS = "cache.evictions"
CACHE_PREFETCHES = "cache.prefetches"
CACHE_GENERALIZATIONS = "cache.generalizations"
CACHE_INDEX_BUILDS = "cache.index_builds"
CACHE_TUPLES_PROCESSED = "cache.tuples_processed"
CACHE_PIN_DEFERRALS = "cache.pin_deferrals"
CACHE_STALE_REPLANS = "cache.stale_replans"
#: Lookups served from an operator-level intermediate element.
CACHE_INTERMEDIATE_HITS = "cache.intermediate_hits"
#: Operator-level intermediates registered at materialization time.
CACHE_INTERMEDIATE_STORES = "cache.intermediate_stores"
IE_INFERENCE_STEPS = "ie.inference_steps"
IE_CAQL_QUERIES = "ie.caql_queries"
LAZY_TUPLES_PRODUCED = "lazy.tuples_produced"
EAGER_TUPLES_PRODUCED = "eager.tuples_produced"
SERVER_SESSIONS_OPENED = "server.sessions_opened"
SERVER_SESSIONS_CLOSED = "server.sessions_closed"
SERVER_REQUESTS_ACCEPTED = "server.requests.accepted"
SERVER_REQUESTS_REJECTED = "server.requests.rejected"
SERVER_REQUESTS_COMPLETED = "server.requests.completed"
SERVER_SCHEDULER_STEPS = "server.scheduler_steps"
#: Remote subplans served from the in-flight MQO registry instead of a
#: second identical round trip (shared multi-query optimization).
SERVER_SHARED_SUBPLANS = "server.shared_subplans"
#: High-water gauges (kept with :meth:`Metrics.gauge_max`).
SERVER_QUEUE_DEPTH_HIGH_WATER = "server.queue_depth_high_water"
SERVER_SESSION_INFLIGHT_HIGH_WATER = "server.session_inflight_high_water"
#: Simulated derivation seconds cache reuse avoided re-paying (the
#: efficacy ledger's aggregate; per-element shares in ``Cache.report()``).
CACHE_SAVED_SECONDS = "cache.saved_seconds"
#: Sliding-window SLO transitions into breach (see :mod:`repro.obs.slo`).
SLO_BREACHES = "slo.breaches"

#: Counter names with this suffix are high-water gauges: absolute values,
#: not accumulating totals.  The telemetry sampler reports them as levels
#: rather than per-interval deltas.
GAUGE_SUFFIX = "_high_water"

# Canonical histogram names (recorded with :meth:`Metrics.observe`).
H_QUERY_SIM_SECONDS = "cms.query_sim_seconds"
H_REMOTE_TUPLES_PER_REQUEST = "remote.tuples_per_request"
H_EVICTED_ELEMENT_BYTES = "cache.evicted_element_bytes"
