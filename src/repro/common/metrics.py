"""Cost and event accounting shared by all BrAID components.

The paper measures the goodness of the CMS by "volume of communication
between the workstation and the remote system, computational demands made on
the database server, and computation that needs to be done by the
workstation".  :class:`Metrics` is the single ledger where every component
records those quantities, so experiments can report them directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Metrics:
    """A hierarchical counter ledger.

    Counters are named with dotted paths (``"remote.requests"``,
    ``"cache.hits.subsumed"``).  Components only ever increment counters;
    reports aggregate by prefix.
    """

    counters: Counter = field(default_factory=Counter)

    def incr(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (may be fractional)."""
        self.counters[name] += amount

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def by_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose dotted name starts with ``prefix``."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: value
            for name, value in self.counters.items()
            if name == prefix or name.startswith(dotted)
        }

    def total(self, prefix: str) -> float:
        """Sum of all counters under ``prefix``."""
        return sum(self.by_prefix(prefix).values())

    def reset(self) -> None:
        """Zero every counter."""
        self.counters.clear()

    def snapshot(self) -> dict[str, float]:
        """An immutable copy of all counters, sorted by name."""
        return dict(sorted(self.counters.items()))

    def diff(self, earlier: dict[str, float]) -> dict[str, float]:
        """Counters that changed since ``earlier`` (a prior snapshot)."""
        out: dict[str, float] = {}
        for name, value in self.counters.items():
            delta = value - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self.counters.items()))

    def format(self, prefix: str = "") -> str:
        """Human-readable report, optionally restricted to ``prefix``."""
        items = self.by_prefix(prefix) if prefix else self.snapshot()
        if not items:
            return "(no metrics)"
        width = max(len(name) for name in items)
        lines = []
        for name in sorted(items):
            value = items[name]
            shown = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"{name:<{width}}  {shown}")
        return "\n".join(lines)


# Canonical counter names, collected here so components and tests agree.
REMOTE_REQUESTS = "remote.requests"
REMOTE_TUPLES = "remote.tuples_shipped"
REMOTE_SERVER_TUPLES = "remote.server_tuples_touched"
REMOTE_RETRIES = "remote.retries"
REMOTE_TIMEOUTS = "remote.timeouts"
REMOTE_FAULTS_INJECTED = "remote.faults_injected"
REMOTE_DEGRADED_ANSWERS = "remote.degraded_answers"
REMOTE_BREAKER_STATE_CHANGES = "remote.breaker_state_changes"
CACHE_HITS_EXACT = "cache.hits.exact"
CACHE_HITS_SUBSUMED = "cache.hits.subsumed"
CACHE_MISSES = "cache.misses"
CACHE_EVICTIONS = "cache.evictions"
CACHE_PREFETCHES = "cache.prefetches"
CACHE_GENERALIZATIONS = "cache.generalizations"
CACHE_INDEX_BUILDS = "cache.index_builds"
CACHE_TUPLES_PROCESSED = "cache.tuples_processed"
IE_INFERENCE_STEPS = "ie.inference_steps"
IE_CAQL_QUERIES = "ie.caql_queries"
LAZY_TUPLES_PRODUCED = "lazy.tuples_produced"
EAGER_TUPLES_PRODUCED = "eager.tuples_produced"
