"""Deterministic simulated time for cost accounting.

BrAID's design is driven by a three-way cost model (Section 3 of the paper):
the volume of communication between the workstation and the remote system,
the computational demands on the database server, and the computation done
by the workstation.  A wall clock cannot separate those contributions and is
not reproducible, so every component in this reproduction charges its costs
to a :class:`SimClock` instead.

The clock supports *parallel tracks* so the Execution Monitor can model the
paper's parallel execution of cache-side and remote-side subqueries
(Section 5.3.3): work charged on concurrent tracks advances simulated time
by the maximum, not the sum, of the track durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostProfile:
    """Unit costs, in abstract simulated seconds.

    The defaults model a late-1980s workstation/Ethernet/server setup in
    relative terms: a remote round trip costs orders of magnitude more than
    touching a tuple locally, and shipping a tuple over the wire costs more
    than reading it from main memory.
    """

    #: Fixed cost of one request/response round trip to the remote DBMS.
    remote_latency: float = 50e-3
    #: Cost of shipping one tuple from the remote DBMS to the workstation.
    transfer_per_tuple: float = 0.5e-3
    #: Cost of shipping one binding value *to* the remote DBMS (semijoin
    #: IN-lists).  Cheaper than a result tuple — a binding is one value,
    #: not a whole row — but charged so semijoin reduction stays honest.
    uplink_per_value: float = 0.1e-3
    #: Server-side cost of touching one tuple while executing a DML request.
    server_per_tuple: float = 0.05e-3
    #: Workstation-side cost of touching one tuple in the cache.
    cache_per_tuple: float = 0.01e-3
    #: Workstation-side cost of one hash-index probe.
    index_probe: float = 0.002e-3
    #: Workstation-side cost of inserting one tuple into an index.
    index_build_per_tuple: float = 0.015e-3
    #: Cost charged by the IE for one inference step (resolution attempt).
    inference_step: float = 0.005e-3
    #: Relative per-tuple cost of local work on the columnar batch engine
    #: (dimensionless ratio applied to ``cache_per_tuple``; E18 measures
    #: the real wall-clock ratio this models).
    columnar_tuple_factor: float = 0.25

    def scaled(self, factor: float) -> "CostProfile":
        """Return a copy with every unit cost multiplied by ``factor``.

        ``columnar_tuple_factor`` is a ratio between local engines, not a
        unit cost, so it is copied unscaled.
        """
        return CostProfile(
            remote_latency=self.remote_latency * factor,
            transfer_per_tuple=self.transfer_per_tuple * factor,
            uplink_per_value=self.uplink_per_value * factor,
            server_per_tuple=self.server_per_tuple * factor,
            cache_per_tuple=self.cache_per_tuple * factor,
            index_probe=self.index_probe * factor,
            index_build_per_tuple=self.index_build_per_tuple * factor,
            inference_step=self.inference_step * factor,
            columnar_tuple_factor=self.columnar_tuple_factor,
        )


@dataclass
class SimClock:
    """A monotonically advancing simulated clock with parallel tracks.

    Ordinary sequential work calls :meth:`advance`.  To model two activities
    that overlap in real time, open a :meth:`parallel` region, charge work to
    its named tracks, and close it; the region advances the clock by the
    longest track.
    """

    now: float = 0.0
    _tracks: dict[str, float] | None = field(default=None, repr=False)

    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of sequential work (or to the active track)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        if self._tracks is None:
            self.now += seconds
        else:
            # Inside a parallel region every plain advance is charged to the
            # implicit "local" track.
            self._tracks["local"] = self._tracks.get("local", 0.0) + seconds

    def charge(self, track: str, seconds: float) -> None:
        """Charge ``seconds`` to a named track of the open parallel region.

        Outside a parallel region this is equivalent to :meth:`advance`.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        if self._tracks is None:
            self.now += seconds
        else:
            self._tracks[track] = self._tracks.get(track, 0.0) + seconds

    def parallel(self) -> "ParallelRegion":
        """Open a parallel region; use as a context manager."""
        return ParallelRegion(self)

    def reset(self) -> None:
        """Reset simulated time to zero (tracks must be closed)."""
        if self._tracks is not None:
            raise RuntimeError("cannot reset the clock inside a parallel region")
        self.now = 0.0


class ParallelRegion:
    """Context manager that merges concurrent track times as a maximum."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._saved: dict[str, float] | None = None

    def __enter__(self) -> "ParallelRegion":
        if self._clock._tracks is not None:
            raise RuntimeError("parallel regions do not nest")
        self._saved = {}
        self._clock._tracks = self._saved
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracks = self._clock._tracks
        self._clock._tracks = None
        if tracks:
            self._clock.now += max(tracks.values())

    @property
    def tracks(self) -> dict[str, float]:
        """Time charged so far to each track (readable inside the region)."""
        if self._saved is None:
            raise RuntimeError("parallel region is not open")
        return dict(self._saved)
