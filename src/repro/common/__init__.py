"""Shared substrate: errors, simulated time, and metric accounting."""

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import (
    AdviceError,
    ArityError,
    BraidError,
    CacheCapacityError,
    CacheError,
    EvaluationError,
    InferenceError,
    KnowledgeBaseError,
    ParseError,
    PlanningError,
    RemoteDBMSError,
    SchemaError,
    TranslationError,
    UnificationError,
    UnknownRelationError,
)
from repro.common.metrics import Metrics

__all__ = [
    "AdviceError",
    "ArityError",
    "BraidError",
    "CacheCapacityError",
    "CacheError",
    "CostProfile",
    "EvaluationError",
    "InferenceError",
    "KnowledgeBaseError",
    "Metrics",
    "ParseError",
    "PlanningError",
    "RemoteDBMSError",
    "SchemaError",
    "SimClock",
    "TranslationError",
    "UnificationError",
    "UnknownRelationError",
]
