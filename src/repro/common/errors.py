"""Exception hierarchy shared by every BrAID subsystem.

All errors raised by this package derive from :class:`BraidError` so that a
caller embedding BrAID can catch everything with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class BraidError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ParseError(BraidError):
    """A textual query, rule, or advice expression could not be parsed.

    Carries the offending ``text`` and a ``position`` (character offset)
    when they are known, so tools can point at the error location.
    """

    def __init__(self, message: str, text: str | None = None, position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:
        base = super().__str__()
        if self.text is not None and self.position is not None:
            snippet = self.text[max(0, self.position - 20):self.position + 20]
            return f"{base} (at offset {self.position}: ...{snippet!r}...)"
        return base


class UnificationError(BraidError):
    """Two terms could not be unified (used internally; most APIs return None)."""


class SchemaError(BraidError):
    """A relation was used inconsistently with its declared schema."""


class UnknownRelationError(SchemaError):
    """A query referenced a relation that no component knows about."""

    def __init__(self, name: str):
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class ArityError(SchemaError):
    """A predicate or relation was used with the wrong number of arguments."""

    def __init__(self, name: str, expected: int, actual: int):
        super().__init__(f"relation {name!r} expects {expected} arguments, got {actual}")
        self.name = name
        self.expected = expected
        self.actual = actual


class EvaluationError(BraidError):
    """A query plan or generator failed during evaluation."""


class CacheError(BraidError):
    """The cache manager was asked to do something inconsistent."""


class CacheCapacityError(CacheError):
    """A cache element cannot fit even after evicting every evictable element."""


class AdviceError(BraidError):
    """An advice expression is malformed or inconsistent with the session."""


class RemoteDBMSError(BraidError):
    """The remote DBMS rejected or failed a request."""


class TransientRemoteError(RemoteDBMSError):
    """A remote request failed in a way that may succeed if retried.

    Raised for injected link failures and mid-stream disconnects; the
    resilient RDI retries these with exponential backoff.
    """


class RemoteTimeoutError(RemoteDBMSError):
    """A remote request exceeded the client's per-request timeout budget.

    Timeouts are measured in simulated seconds of remote-side work, so they
    are deterministic under a fixed fault seed.  Treated as retryable.
    """


class CircuitOpenError(RemoteDBMSError):
    """The circuit breaker is open: remote requests are refused locally.

    Raised without touching the network, so a failing server is not
    hammered while it recovers; the CMS answers from the cache (degraded)
    when it can.
    """


class TranslationError(BraidError):
    """A CAQL query could not be translated to the remote DBMS's DML."""


class PlanningError(BraidError):
    """The query planner/optimizer could not produce a plan."""


class StalePlanError(PlanningError):
    """A plan referenced cache elements that were invalidated before it ran.

    Under multi-session interleaving another session's eviction,
    generalization, or replacement can retire an element between planning
    and execution; the executor detects this through the cache epoch and
    element identity, and the CMS responds by replanning against the
    current cache state.
    """


class ServerError(BraidError):
    """The multi-session BrAID server refused or failed a request."""


class ServerOverloadError(ServerError):
    """Admission control rejected a request because the server is saturated.

    Raised when the bounded request queue is full; carries the queue
    bound so clients can implement their own backoff.
    """

    def __init__(self, message: str, queue_depth: int | None = None,
                 max_queue_depth: int | None = None):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth


class UnknownSessionError(ServerError):
    """A request named a session the server has never opened (or closed)."""

    def __init__(self, name: str):
        super().__init__(f"unknown session: {name!r}")
        self.name = name


class SessionStateError(ServerError):
    """A session was used in a way its lifecycle state forbids
    (double-open of a name, submit after close, and the like)."""


class InferenceError(BraidError):
    """The inference engine failed while solving an AI query."""


class InvariantViolation(BraidError):
    """An internal consistency check failed.

    Raised by the ``check_invariants()`` hooks on the cache, planner,
    result streams, and metrics ledger (see :mod:`repro.qa.invariants`).
    A violation always indicates a bug in BrAID itself, never bad input:
    the checks assert properties the implementation is supposed to
    maintain unconditionally.
    """


class KnowledgeBaseError(BraidError):
    """A rule or assertion is inconsistent with the knowledge base."""
