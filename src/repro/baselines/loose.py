"""The loose-coupling baseline (Section 1).

"The loose coupling approach to AI/DB integration uses a simple interface
between the two types of systems ... The relatively low level of
integration results in poor performance and limited use of the DBMS by the
AI system" — e.g. KEE-Connection [ABAR86] and EDUCE [BOCC86].

Every CAQL query is translated and shipped to the remote DBMS; nothing is
cached, nothing is reused, no advice is consulted.
"""

from __future__ import annotations

from repro.common.errors import TranslationError
from repro.common.metrics import CACHE_MISSES
from repro.relational.relation import Relation
from repro.caql.eval import evaluate_psj, result_schema
from repro.caql.psj import PSJQuery
from repro.baselines.base import BaselineInterface


class LooseCoupling(BaselineInterface):
    """No cache: one remote request per CAQL query."""

    name = "loose-coupling"

    def _answer_psj(self, psj: PSJQuery) -> Relation:
        if psj.unsatisfiable:
            return Relation(result_schema(psj.name, psj.arity))
        if not psj.occurrences:
            return evaluate_psj(psj, _no_lookup)
        self.metrics.incr(CACHE_MISSES)
        return self.rdi.fetch(psj)


def _no_lookup(pred: str) -> Relation:  # pragma: no cover - defensive
    raise TranslationError(f"occurrence-free query tried to read {pred}")
