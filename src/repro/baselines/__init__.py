"""Comparison baselines: loose coupling, exact-match cache, relation buffer."""

from repro.baselines.base import BaselineInterface
from repro.baselines.exact_cache import ExactMatchCache
from repro.baselines.loose import LooseCoupling
from repro.baselines.relation_cache import SingleRelationBuffer

__all__ = [
    "BaselineInterface",
    "ExactMatchCache",
    "LooseCoupling",
    "SingleRelationBuffer",
]
