"""The exact-match result-caching baseline (BERMUDA style).

Section 2: "the use of buffering and caching has been limited to query
results (treated as an irreducible unit) and the data is reused only if an
exact match of a later query occurs" — the reuse model of [IOAN88]
(BERMUDA) and [SELL87], which BrAID's subsumption generalizes.

Results are cached whole, keyed by the query's canonical structure, and
replaced LRU; a query that is not an exact structural repeat goes to the
remote DBMS even if cached data could derive it.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.metrics import CACHE_HITS_EXACT, CACHE_MISSES
from repro.relational.relation import Relation
from repro.caql.eval import evaluate_psj, result_schema
from repro.caql.psj import PSJQuery
from repro.baselines.base import BaselineInterface
from repro.baselines.loose import _no_lookup


class ExactMatchCache(BaselineInterface):
    """Whole-result caching with exact-match reuse and LRU replacement."""

    name = "exact-match-cache"

    def __init__(self, remote, capacity_bytes: int = 4_000_000, **kwargs):
        super().__init__(remote, **kwargs)
        self.capacity_bytes = capacity_bytes
        self._results: OrderedDict[tuple, Relation] = OrderedDict()

    def _answer_psj(self, psj: PSJQuery) -> Relation:
        if psj.unsatisfiable:
            return Relation(result_schema(psj.name, psj.arity))
        if not psj.occurrences:
            return evaluate_psj(psj, _no_lookup)

        key = psj.canonical_key()
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            self.metrics.incr(CACHE_HITS_EXACT)
            self.clock.charge("local", self.profile.cache_per_tuple * len(cached))
            return cached

        self.metrics.incr(CACHE_MISSES)
        result = self.rdi.fetch(psj)
        self._store(key, result)
        return result

    def _store(self, key: tuple, result: Relation) -> None:
        size = result.estimated_bytes()
        if size > self.capacity_bytes:
            return
        self._results[key] = result
        while self.used_bytes() > self.capacity_bytes:
            self._results.popitem(last=False)  # least recently used

    def used_bytes(self) -> int:
        """Estimated bytes held by cached results."""
        return sum(r.estimated_bytes() for r in self._results.values())

    @property
    def cached_result_count(self) -> int:
        """How many query results are currently cached."""
        return len(self._results)
