"""Common scaffolding for the comparison baselines.

The paper positions BrAID against earlier AI/DB couplings; to compare them
under identical conditions every baseline exposes the same interface as
:class:`~repro.core.cms.CacheManagementSystem` (``begin_session`` +
``query`` + shared metrics/clock), so the same inference engine and the
same workloads run unchanged against any of them.
"""

from __future__ import annotations

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import PlanningError
from repro.common.metrics import IE_CAQL_QUERIES, Metrics
from repro.logic.builtins import BuiltinRegistry
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.statistics import RelationStatistics
from repro.remote.server import RemoteDBMS
from repro.advice.language import AdviceSet
from repro.caql.ast import (
    AggregateQuery,
    CAQLQuery,
    ConjunctiveQuery,
    QuantifiedQuery,
    SetOfQuery,
)
from repro.caql.eval import (
    apply_evaluable,
    core_plan,
    evaluate_aggregate,
    evaluate_quantified,
    evaluate_setof,
)
from repro.caql.psj import PSJQuery, psj_from_literals
from repro.core.executor import ResultStream
from repro.core.rdi import RemoteInterface


class BaselineInterface:
    """Shared plumbing: metadata passthrough, second-order handling,
    evaluable residue; subclasses implement :meth:`_answer_psj`."""

    #: Human-readable baseline name (also used in experiment reports).
    name = "baseline"

    def __init__(self, remote: RemoteDBMS, builtins: BuiltinRegistry | None = None):
        self.remote = remote
        self.clock: SimClock = remote.clock
        self.metrics: Metrics = remote.metrics
        self.profile: CostProfile = remote.profile
        self.builtins = builtins if builtins is not None else BuiltinRegistry()
        self.rdi = RemoteInterface(remote)

    # -- session protocol (advice is accepted and ignored) -------------------------
    def begin_session(self, advice: AdviceSet | None = None) -> None:
        """Baselines have no advice machinery; the parameter is accepted so
        the IE's session protocol works unchanged."""

    # -- metadata --------------------------------------------------------------------
    def schema_of(self, table: str) -> Schema:
        """Remote schema lookup (cached by the RDI)."""
        return self.rdi.schema_of(table)

    def statistics_of(self, table: str) -> RelationStatistics:
        """Remote statistics lookup (cached by the RDI)."""
        return self.rdi.statistics_of(table)

    # -- queries -----------------------------------------------------------------------
    def query(self, q: CAQLQuery) -> ResultStream:
        """Execute a CAQL query; returns a result stream."""
        if isinstance(q, AggregateQuery):
            base = self.query(q.base).as_relation()
            return ResultStream(evaluate_aggregate(q, base), q.base.name)
        if isinstance(q, SetOfQuery):
            base = self.query(q.base).as_relation()
            return ResultStream(evaluate_setof(q, base), q.base.name)
        if isinstance(q, QuantifiedQuery):
            base = self.query(q.base).as_relation()
            within = (
                self.query(q.within).as_relation() if q.within is not None else None
            )
            return ResultStream(evaluate_quantified(q, base, within), q.base.name)
        if not isinstance(q, ConjunctiveQuery):
            raise PlanningError(f"not a CAQL query: {q!r}")

        self.metrics.incr(IE_CAQL_QUERIES)
        psj, core_vars, evaluable = core_plan(q, self.builtins)
        if not evaluable:
            psj = psj_from_literals(
                q.name, q.relation_literals(), q.comparison_literals(), q.answers
            )
            return ResultStream(self._answer_psj(psj), q.name)

        core_result = self._answer_psj(psj)
        final = apply_evaluable(q, core_vars, evaluable, core_result, self.builtins)
        return ResultStream(final, q.name)

    # -- subclass hook --------------------------------------------------------------------
    def _answer_psj(self, psj: PSJQuery) -> Relation:
        raise NotImplementedError
