"""The single-relation buffering baseline (CERI86 style).

Section 2 / Section 5.3.2: "In [CERI86], cached elements contain only
single relations" — whole base-relation extensions are buffered on the
workstation, and all query processing (selections, joins) runs locally
over those buffers.

Compared with BrAID this reuses data across queries touching the same
relations, but always ships entire relations (no query pushing, no view
caching, no advice).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.metrics import (
    CACHE_HITS_EXACT,
    CACHE_MISSES,
    CACHE_TUPLES_PROCESSED,
)
from repro.relational.relation import Relation
from repro.caql.eval import evaluate_psj, result_schema
from repro.caql.psj import PSJQuery
from repro.baselines.base import BaselineInterface


class SingleRelationBuffer(BaselineInterface):
    """Buffers whole base relations; evaluates queries locally."""

    name = "single-relation-buffer"

    def __init__(self, remote, capacity_bytes: int = 8_000_000, **kwargs):
        super().__init__(remote, **kwargs)
        self.capacity_bytes = capacity_bytes
        self._buffers: OrderedDict[str, Relation] = OrderedDict()

    def _answer_psj(self, psj: PSJQuery) -> Relation:
        if psj.unsatisfiable:
            return Relation(result_schema(psj.name, psj.arity))
        result = evaluate_psj(psj, self._relation_of)
        processed = sum(
            len(self._buffers[occ.pred])
            for occ in psj.occurrences
            if occ.pred in self._buffers
        )
        self.metrics.incr(CACHE_TUPLES_PROCESSED, processed + len(result))
        self.clock.charge(
            "local", self.profile.cache_per_tuple * (processed + len(result))
        )
        return result

    def _relation_of(self, pred: str) -> Relation:
        buffered = self._buffers.get(pred)
        if buffered is not None:
            self._buffers.move_to_end(pred)
            self.metrics.incr(CACHE_HITS_EXACT)
            return buffered
        self.metrics.incr(CACHE_MISSES)
        relation = self.rdi.fetch_base_relation(pred)
        self._store(pred, relation)
        return relation

    def _store(self, pred: str, relation: Relation) -> None:
        if relation.estimated_bytes() > self.capacity_bytes:
            return
        self._buffers[pred] = relation
        while self.used_bytes() > self.capacity_bytes:
            self._buffers.popitem(last=False)

    def used_bytes(self) -> int:
        """Estimated bytes held by the buffered relations."""
        return sum(r.estimated_bytes() for r in self._buffers.values())

    @property
    def buffered_relations(self) -> list[str]:
        """Names of the currently buffered base relations."""
        return list(self._buffers)
