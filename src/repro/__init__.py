"""A reproduction of BrAID (Sheth & O'Hare, ICDE 1991).

BrAID bridges a logic-based AI system (the inference engine, IE) and an
unmodified relational DBMS through a Cache Management System (CMS) that
caches views, reuses them via subsumption, and takes advice from the IE.

Quick start::

    from repro import BraidSystem, BraidConfig
    from repro.workloads import genealogy

    system = BraidSystem.from_workload(genealogy())
    for solution in system.ask("ancestor(p0, W)"):
        print(solution)
    print(system.report())
"""

from repro.braid import BRIDGES, BraidConfig, BraidSystem
from repro.common.clock import CostProfile, SimClock
from repro.common.errors import BraidError
from repro.common.metrics import Metrics
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.ie.engine import InferenceEngine, Solutions
from repro.logic.kb import KnowledgeBase
from repro.remote.server import RemoteDBMS

__version__ = "0.1.0"

__all__ = [
    "BRIDGES",
    "BraidConfig",
    "BraidError",
    "BraidSystem",
    "CMSFeatures",
    "CacheManagementSystem",
    "CostProfile",
    "InferenceEngine",
    "KnowledgeBase",
    "Metrics",
    "RemoteDBMS",
    "SimClock",
    "Solutions",
    "__version__",
]
