"""The BrAID system facade: IE + CMS + remote DBMS, wired per Figure 3.

:class:`BraidSystem` is the public entry point for users of this library:
load a workload (or tables + rules), pick an inference strategy and a
bridge (the full CMS or one of the comparison baselines), and ask AI
queries.  All cost accounting is shared, so ``report()`` summarizes one
run end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import BraidError
from repro.common.metrics import Metrics
from repro.obs.tracer import Tracer
from repro.logic.kb import KnowledgeBase
from repro.relational.relation import Relation
from repro.remote.server import RemoteDBMS
from repro.remote.sqlite_backend import SqliteEngine
from repro.baselines.exact_cache import ExactMatchCache
from repro.baselines.loose import LooseCoupling
from repro.baselines.relation_cache import SingleRelationBuffer
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.ie.engine import InferenceEngine, Solutions
from repro.server.braid_server import BraidServer, ServerConfig
from repro.workloads.workload import Workload

#: The bridge implementations selectable by name.
BRIDGES = ("cms", "loose", "exact-cache", "relation-buffer")


@dataclass
class BraidConfig:
    """Construction-time options for a BrAID system."""

    strategy: str = "conjunction"
    bridge: str = "cms"
    backend: str = "pure"  # or "sqlite"
    cache_capacity_bytes: int = 4_000_000
    features: CMSFeatures | None = None
    profile: CostProfile | None = None
    generate_advice: bool = True
    use_statistics: bool = True
    max_depth: int = 64
    #: Collect a full span trace of every query's lifecycle (IE step →
    #: CAQL query → plan → execution → remote link).  Off by default.
    tracing: bool = False


class BraidSystem:
    """An assembled BrAID instance: remote DBMS + bridge + IE."""

    def __init__(
        self,
        tables: list[Relation],
        kb: KnowledgeBase,
        config: BraidConfig | None = None,
    ):
        self.config = config if config is not None else BraidConfig()
        self.clock = SimClock()
        self.metrics = Metrics()
        self.tracer = (
            Tracer(self.clock) if self.config.tracing else Tracer.disabled()
        )
        profile = self.config.profile if self.config.profile is not None else CostProfile()

        engine = SqliteEngine() if self.config.backend == "sqlite" else None
        if self.config.backend not in ("pure", "sqlite"):
            raise BraidError(f"unknown backend {self.config.backend!r}")
        self.remote = RemoteDBMS(
            engine=engine,
            clock=self.clock,
            profile=profile,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        for table in tables:
            self.remote.load_table(table)

        self.kb = kb
        #: With the "cms" bridge the system is a one-session instance of
        #: the multi-session server: the single IE talks to a session's
        #: CMS while the session manager owns the (shareable) cache, so
        #: the single- and multi-client paths exercise the same layer.
        self.server: BraidServer | None = None
        self.bridge = self._build_bridge()
        self.ie = InferenceEngine(
            kb,
            self.bridge,
            strategy=self.config.strategy,
            generate_advice=self.config.generate_advice,
            use_statistics=self.config.use_statistics,
            max_depth=self.config.max_depth,
        )

    def _build_bridge(self):
        bridge = self.config.bridge
        if bridge == "cms":
            self.server = BraidServer(
                config=ServerConfig(
                    cache_capacity_bytes=self.config.cache_capacity_bytes,
                    features=self.config.features,
                ),
                remote=self.remote,
                # The IE consumes streams lazily and may abandon them, so
                # stream-lifetime pins (a server-drain guarantee) stay off.
                pin_streams=False,
            )
            return self.server.open_session("main").cms
        if bridge == "loose":
            return LooseCoupling(self.remote)
        if bridge == "exact-cache":
            return ExactMatchCache(
                self.remote, capacity_bytes=self.config.cache_capacity_bytes
            )
        if bridge == "relation-buffer":
            return SingleRelationBuffer(
                self.remote, capacity_bytes=self.config.cache_capacity_bytes
            )
        raise BraidError(f"unknown bridge {bridge!r}; have {BRIDGES}")

    # -- construction helpers --------------------------------------------------------
    @classmethod
    def from_workload(cls, workload: Workload, config: BraidConfig | None = None) -> "BraidSystem":
        """Build a system from a prepared workload bundle."""
        return cls(workload.tables, workload.build_kb(), config)

    # -- the AI query interface ----------------------------------------------------------
    def ask(self, query: str) -> Solutions:
        """Solve an AI query (lazy solutions)."""
        return self.ie.ask(query)

    def ask_all(self, query: str) -> list[dict[str, object]]:
        """All solutions of an AI query, as dicts."""
        return self.ie.ask_all(query)

    def ask_first(self, query: str) -> dict[str, object] | None:
        """The first solution only (lazy under interpretive strategies)."""
        return self.ie.ask_first(query)

    def explain(self, query: str, solution: dict[str, object] | None = None):
        """Justify an answer (see :meth:`InferenceEngine.explain`)."""
        return self.ie.explain(query, solution)

    # -- reporting -------------------------------------------------------------------------
    def report(self) -> str:
        """A human-readable cost summary of everything asked so far."""
        lines = [
            f"BrAID run [{self.config.bridge} bridge, {self.config.strategy} strategy]",
            f"simulated time: {self.clock.now:.6f}s",
            "",
            self.metrics.format(),
        ]
        if isinstance(self.bridge, CacheManagementSystem):
            stats = self.bridge.cache_statistics()
            lines.append("")
            lines.append(
                "cache: {elements:.0f} elements, {total_rows:.0f} rows, "
                "{used_bytes:.0f}/{capacity_bytes:.0f} bytes, "
                "{evictions:.0f} evictions".format(**stats)
            )
        return "\n".join(lines)

    def trace_jsonl(self) -> str:
        """The span trace in canonical JSONL ("" with tracing off)."""
        return self.tracer.to_jsonl()

    def trace_fingerprint(self) -> str:
        """SHA-256 over the span trace (same seed → same fingerprint)."""
        return self.tracer.fingerprint()

    def reset_measurements(self) -> None:
        """Zero the clock and counters (cache contents are kept)."""
        self.metrics.reset()
        self.clock.reset()
