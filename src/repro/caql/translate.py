"""Translation from PSJ queries to the remote DBMS's DML.

Section 3: "To retrieve data from the remote database, [the CMS] performs
query translation to [the] data manipulation language (DML) of the remote
DBMS."  Qualified columns (``t1.c2``) are mapped through the remote schema
catalog to real attribute names; pinned-constant projection entries are
kept out of the SELECT list and re-attached client-side by the RDI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.common.errors import TranslationError
from repro.relational.expressions import Col
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.remote.sql import SelectQuery, SqlCol, SqlCondition, SqlInList, SqlLit, TableRef
from repro.caql.eval import result_schema
from repro.caql.psj import ConstProj, PSJQuery, parse_column

#: Resolves a base table name to its remote schema.
SchemaLookup = Callable[[str], Schema]

#: PSJ condition operator -> DML operator (identical sets here).
_SQL_OPS = {"=", "!=", "<", ">", "<=", ">="}


@dataclass(frozen=True)
class SQLTranslation:
    """A DML request plus the recipe for rebuilding result rows.

    ``output`` has one entry per PSJ projection slot: ``("col", i)`` takes
    column ``i`` of the shipped result; ``("const", v)`` inserts the pinned
    constant ``v``.
    """

    query: SelectQuery
    output: tuple[tuple[str, object], ...]
    result_name: str

    def rebuild_row(self, shipped: tuple) -> tuple:
        """One result row reassembled from a shipped row."""
        return tuple(
            value if kind == "const" else shipped[value] for kind, value in self.output
        )

    def rebuild(self, shipped_rows: list[tuple]) -> Relation:
        """Assemble the final result relation from shipped rows."""
        schema = result_schema(self.result_name, len(self.output))
        if not self.output:
            rows = [(True,)] if shipped_rows else []
            return Relation(schema, rows)
        return Relation(schema, (self.rebuild_row(row) for row in shipped_rows))


def sql_from_psj(
    psj: PSJQuery,
    schema_of: SchemaLookup,
    in_lists: Mapping[str, tuple[object, ...]] | None = None,
) -> SQLTranslation:
    """Translate a PSJ query into a DML request.

    ``in_lists`` maps qualified query columns (``"t1.c0"``) to binding
    value tuples; each becomes a shipped IN-list predicate (the semijoin
    reduction).  Values must already be deduplicated and in canonical
    order — the RDI owns that normalization.

    Raises :class:`TranslationError` for queries with no relation
    occurrences (nothing to ask the remote DBMS for) — the planner routes
    those to local evaluation.
    """
    if not psj.occurrences:
        raise TranslationError(f"{psj.name}: no relation occurrences to translate")
    if psj.unsatisfiable:
        raise TranslationError(f"{psj.name}: query is unsatisfiable; do not ship it")

    schemas = {occ.tag: schema_of(occ.pred) for occ in psj.occurrences}
    for occ in psj.occurrences:
        if schemas[occ.tag].arity != occ.arity:
            raise TranslationError(
                f"{psj.name}: {occ.pred} has remote arity {schemas[occ.tag].arity}, "
                f"query expects {occ.arity}"
            )

    def to_sql_col(qualified: str) -> SqlCol:
        tag, position = parse_column(qualified)
        return SqlCol(tag, schemas[tag].attributes[position])

    tables = tuple(TableRef(occ.pred, occ.tag) for occ in psj.occurrences)

    where = []
    for condition in psj.conditions:
        if condition.op not in _SQL_OPS:
            raise TranslationError(f"operator {condition.op!r} not supported remotely")
        left = (
            to_sql_col(condition.left.name)
            if isinstance(condition.left, Col)
            else SqlLit(condition.left.value)
        )
        right = (
            to_sql_col(condition.right.name)
            if isinstance(condition.right, Col)
            else SqlLit(condition.right.value)
        )
        where.append(SqlCondition(left, right=right, op=condition.op))

    if in_lists:
        for qualified in sorted(in_lists):
            where.append(SqlInList(to_sql_col(qualified), tuple(in_lists[qualified])))

    select_cols: list[SqlCol] = []
    select_index: dict[str, int] = {}
    output: list[tuple[str, object]] = []
    for entry in psj.projection:
        if isinstance(entry, ConstProj):
            output.append(("const", entry.value))
            continue
        if entry not in select_index:
            select_index[entry] = len(select_cols)
            select_cols.append(to_sql_col(entry))
        output.append(("col", select_index[entry]))

    if not select_cols:
        # Fully instantiated (boolean) query: ship one witness column.
        first = psj.occurrences[0]
        select_cols.append(SqlCol(first.tag, schemas[first.tag].attributes[0]))

    query = SelectQuery(tables=tables, select=tuple(select_cols), where=tuple(where))
    return SQLTranslation(query, tuple(output), psj.name)
