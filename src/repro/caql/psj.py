"""The PSJ (project–select–join) canonical form of CAQL queries.

Section 5.3.2 of the paper: "We limit Q and E_i's to logic expressions
equivalent to PSJ expressions (as in [LARS85])".  Every conjunctive CAQL
query is normalized into this form, which is what the subsumption
algorithm, the planner, and the remote translator all consume:

* an ordered list of **relation occurrences** (the same base relation may
  occur several times, each under a distinct tag ``t0, t1, ...``);
* a conjunction of **conditions** over *qualified columns* — strings of the
  form ``"t1.c2"`` meaning "argument position 2 of occurrence t1" — and
  literal values; and
* an ordered **projection** of qualified columns (or pinned constants, for
  instantiated answer positions).

Shared variables become column-equality conditions; constants in argument
positions become column-literal equality conditions.  This makes structural
reasoning (implication, subsumption, generalization) purely syntactic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.errors import TranslationError
from repro.logic.terms import Atom, Const, Term, Var
from repro.relational.expressions import Col, Comparison, Lit, holds

#: CAQL comparison predicate -> condition operator.
_OP_MAP = {"<": "<", ">": ">", "=<": "<=", ">=": ">=", "=": "=", "\\=": "!="}

_COLUMN_RE = re.compile(r"^(t\d+)\.c(\d+)$")


def column(tag: str, position: int) -> str:
    """The qualified column name for argument ``position`` of ``tag``."""
    return f"{tag}.c{position}"


def parse_column(name: str) -> tuple[str, int]:
    """Inverse of :func:`column`."""
    match = _COLUMN_RE.match(name)
    if match is None:
        raise TranslationError(f"not a qualified column: {name!r}")
    return match.group(1), int(match.group(2))


@dataclass(frozen=True, slots=True)
class Occurrence:
    """One occurrence of a base relation in a query."""

    tag: str
    pred: str
    arity: int

    def columns(self) -> list[str]:
        """The qualified column names of this occurrence, in position order."""
        return [column(self.tag, i) for i in range(self.arity)]

    def __str__(self) -> str:
        return f"{self.tag}:{self.pred}/{self.arity}"


@dataclass(frozen=True, slots=True)
class ConstProj:
    """A projection entry pinned to a constant (instantiated answer slot)."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


#: A projection entry: a qualified column name or a pinned constant.
ProjEntry = str | ConstProj


@dataclass(frozen=True)
class PSJQuery:
    """A normalized project–select–join query."""

    name: str
    occurrences: tuple[Occurrence, ...]
    conditions: tuple[Comparison, ...]
    projection: tuple[ProjEntry, ...]
    #: Mapping variable name -> all qualified columns it binds (first is the
    #: representative used in conditions/projection).  Derived data kept for
    #: generalization and diagnostics.
    var_columns: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: True when constant folding proved the query empty.
    unsatisfiable: bool = False

    def __post_init__(self) -> None:
        tags = [o.tag for o in self.occurrences]
        if len(set(tags)) != len(tags):
            raise TranslationError(f"duplicate occurrence tags in {self.name}: {tags}")

    # -- structure ------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of projection entries."""
        return len(self.projection)

    def occurrence(self, tag: str) -> Occurrence:
        """The occurrence tagged ``tag``; raises when absent."""
        for occ in self.occurrences:
            if occ.tag == tag:
                return occ
        raise TranslationError(f"no occurrence tagged {tag!r} in {self.name}")

    def predicates(self) -> list[str]:
        """Base-relation names, one per occurrence, in order."""
        return [o.pred for o in self.occurrences]

    def all_columns(self) -> list[str]:
        """Every qualified column of every occurrence."""
        out = []
        for occ in self.occurrences:
            out.extend(occ.columns())
        return out

    def columns_of_var(self, var_name: str) -> tuple[str, ...]:
        """All columns bound to the named variable (first is representative)."""
        for name, cols in self.var_columns:
            if name == var_name:
                return cols
        return ()

    def column_conditions(self, tag: str) -> list[Comparison]:
        """Conditions that only mention columns of occurrence ``tag``."""
        prefix = tag + "."
        out = []
        for condition in self.conditions:
            cols = condition.columns()
            if cols and all(c.startswith(prefix) for c in cols):
                out.append(condition)
        return out

    def canonical_key(self) -> tuple:
        """A hashable key equal for structurally identical queries.

        Tags are already assigned in occurrence order, so two queries built
        from the same literal sequence get the same key.  Used by
        exact-match result caching.
        """
        return (
            tuple((o.pred, o.arity) for o in self.occurrences),
            tuple(sorted(str(c.normalized()) for c in self.conditions)),
            tuple(str(p) for p in self.projection),
        )

    def __str__(self) -> str:
        occs = ", ".join(str(o) for o in self.occurrences)
        conds = " & ".join(str(c) for c in self.conditions) or "true"
        proj = ", ".join(str(p) for p in self.projection)
        return f"PSJ {self.name}: [{occs}] where {conds} project ({proj})"


def psj_from_literals(
    name: str,
    relation_literals: list[Atom],
    comparison_literals: list[Atom],
    answers: tuple[Term, ...],
) -> PSJQuery:
    """Normalize a conjunction of literals into PSJ form.

    ``relation_literals`` become occurrences; shared variables and constant
    arguments become conditions; ``comparison_literals`` become conditions
    through variable representatives; ``answers`` become the projection.
    """
    occurrences: list[Occurrence] = []
    conditions: list[Comparison] = []
    representative: dict[Var, str] = {}
    all_columns: dict[Var, list[str]] = {}
    unsatisfiable = False

    for index, literal in enumerate(relation_literals):
        tag = f"t{index}"
        occurrences.append(Occurrence(tag, literal.pred, literal.arity))
        for position, arg in enumerate(literal.args):
            qualified = column(tag, position)
            if isinstance(arg, Const):
                conditions.append(Comparison(Col(qualified), "=", Lit(arg.value)))
            else:
                if arg in representative:
                    conditions.append(
                        Comparison(Col(representative[arg]), "=", Col(qualified))
                    )
                else:
                    representative[arg] = qualified
                all_columns.setdefault(arg, []).append(qualified)

    def operand(term: Term):
        if isinstance(term, Const):
            return Lit(term.value)
        rep = representative.get(term)
        if rep is None:
            raise TranslationError(
                f"comparison variable {term} is not bound by any relation literal in {name}"
            )
        return Col(rep)

    for literal in comparison_literals:
        if literal.pred not in _OP_MAP:
            raise TranslationError(f"{literal.pred} is not a comparison predicate")
        op = _OP_MAP[literal.pred]
        left_term, right_term = literal.args
        if isinstance(left_term, Const) and isinstance(right_term, Const):
            # Constant-fold: either trivially true (drop) or the whole
            # query is unsatisfiable.
            if not holds(left_term.value, op, right_term.value):
                unsatisfiable = True
            continue
        conditions.append(Comparison(operand(left_term), op, operand(right_term)))

    projection: list[ProjEntry] = []
    for term in answers:
        if isinstance(term, Const):
            projection.append(ConstProj(term.value))
        else:
            rep = representative.get(term)
            if rep is None:
                raise TranslationError(
                    f"answer variable {term} is not bound by any relation literal in {name}"
                )
            projection.append(rep)

    var_columns = tuple(
        (var.name, tuple(cols)) for var, cols in all_columns.items()
    )
    return PSJQuery(
        name,
        tuple(occurrences),
        tuple(c.normalized() for c in conditions),
        tuple(projection),
        var_columns=var_columns,
        unsatisfiable=unsatisfiable,
    )
