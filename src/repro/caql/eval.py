"""Evaluation of PSJ queries and conjunctive CAQL queries over relations.

This is the machinery behind the Cache Manager's Query Processor (Section
5.4): it executes PSJ plans against in-memory relations, in both eager
(extension-producing) and lazy (generator pipeline) forms, and applies the
CAQL operations a conventional remote DBMS lacks (evaluable functions,
AGG/SETOF) on top of the conjunctive core.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.common.errors import EvaluationError
from repro.logic.builtins import BuiltinRegistry
from repro.logic.terms import Atom, Const, Substitution, Var
from repro.relational.expressions import Comparison
from repro.relational.generator import GeneratorRelation
from repro.relational.operators import aggregate as relational_aggregate
from repro.relational.operators import join, select
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.caql.ast import AggregateQuery, ConjunctiveQuery, SetOfQuery
from repro.caql.psj import ConstProj, PSJQuery, psj_from_literals

#: Resolves a base-relation name to its extension (cache lookup).
RelationLookup = Callable[[str], Relation]


def result_schema(name: str, arity: int) -> Schema:
    """The schema of a query result: positional attributes ``a0..``."""
    return Schema(name, tuple(f"a{i}" for i in range(max(arity, 1))))


# ---------------------------------------------------------------------------
# eager PSJ evaluation
# ---------------------------------------------------------------------------


def evaluate_psj(psj: PSJQuery, lookup: RelationLookup) -> Relation:
    """Eagerly evaluate a PSJ query; returns the result extension.

    Occurrences are loaded through ``lookup``, selections are pushed down,
    joins run left-to-right with hash joins on applicable equalities, and
    the projection (with pinned constants) produces positional attributes.
    """
    schema = result_schema(psj.name, psj.arity)
    if psj.unsatisfiable:
        return Relation(schema)
    combined = _joined_relation(psj, lookup)
    return _project_result(combined, psj, schema)


def _occurrence_relation(psj: PSJQuery, occ, lookup: RelationLookup) -> Relation:
    base = lookup(occ.pred)
    if base.schema.arity != occ.arity:
        raise EvaluationError(
            f"relation {occ.pred} has arity {base.schema.arity}, query expects {occ.arity}"
        )
    schema = Schema(occ.tag, tuple(occ.columns()))
    renamed = Relation(schema, iter(base))
    local = psj.column_conditions(occ.tag)
    if local:
        renamed = select(renamed, local)
    return renamed


def _joined_relation(psj: PSJQuery, lookup: RelationLookup) -> Relation:
    if not psj.occurrences:
        # A query with no relation occurrences has one empty row (its
        # conditions were constant-folded during normalization).
        return Relation(Schema("unit", ("_unit",)), [(None,)])

    consumed: set[Comparison] = set()
    for occ in psj.occurrences:
        consumed.update(psj.column_conditions(occ.tag))

    combined = _occurrence_relation(psj, psj.occurrences[0], lookup)
    seen_cols = set(combined.schema.attributes)
    pending = [c for c in psj.conditions if c not in consumed]
    for occ in psj.occurrences[1:]:
        right = _occurrence_relation(psj, occ, lookup)
        right_cols = set(right.schema.attributes)
        pairs, residual, remaining = [], [], []
        for condition in pending:
            cols = condition.columns()
            if cols <= (seen_cols | right_cols):
                left_side = cols & seen_cols
                right_side = cols & right_cols
                if (
                    condition.op == "="
                    and condition.is_col_col()
                    and len(left_side) == 1
                    and len(right_side) == 1
                ):
                    pairs.append((left_side.pop(), right_side.pop()))
                else:
                    residual.append(condition)
            else:
                remaining.append(condition)
        combined = join(combined, right, pairs, name="join", conditions=residual)
        seen_cols |= right_cols
        pending = remaining
    if pending:
        combined = select(combined, pending)
    return combined


def _project_result(combined: Relation, psj: PSJQuery, schema: Schema) -> Relation:
    positions: list[tuple[str, object]] = []
    for entry in psj.projection:
        if isinstance(entry, ConstProj):
            positions.append(("const", entry.value))
        else:
            positions.append(("col", combined.schema.position(entry)))
    if not positions:
        # Boolean query: non-empty input -> single "yes" row.
        rows = [(True,)] if len(combined) else []
        return Relation(schema, rows)
    out_rows = (
        tuple(value if kind == "const" else row[value] for kind, value in positions)
        for row in combined
    )
    return Relation(schema, out_rows)


# ---------------------------------------------------------------------------
# lazy PSJ evaluation
# ---------------------------------------------------------------------------


def lazy_psj(psj: PSJQuery, lookup: RelationLookup) -> GeneratorRelation:
    """A generator relation computing the PSJ result on demand.

    The pipeline streams the first occurrence and hash-joins the rest;
    nothing is computed until the first row is pulled, satisfying the
    paper's lazy-evaluation requirement (Section 5.1).  Inputs are fetched
    through ``lookup`` lazily too, so the generator is legal exactly when
    all inputs are cached at pull time.
    """
    schema = result_schema(psj.name, psj.arity)

    def source() -> Iterator[tuple]:
        if psj.unsatisfiable:
            return
        rows, combined_schema = _pipeline(psj, lookup)
        if not psj.projection:
            # Boolean query: one "yes" row iff any row exists.
            for _row in rows:
                yield (True,)
                return
            return
        positions: list[tuple[str, object]] = []
        for entry in psj.projection:
            if isinstance(entry, ConstProj):
                positions.append(("const", entry.value))
            else:
                positions.append(("col", combined_schema.position(entry)))
        for row in rows:
            yield tuple(
                value if kind == "const" else row[value] for kind, value in positions
            )

    return GeneratorRelation(schema, source)


def _pipeline(psj: PSJQuery, lookup: RelationLookup) -> tuple[Iterator[tuple], Schema]:
    """A streaming plan: the leftmost occurrence is scanned lazily, inner
    occurrences become hash-join build sides (materialized on first pull
    inside :func:`join_iter`)."""
    from repro.relational.operators import join_iter, select_iter

    if not psj.occurrences:
        unit = Schema("unit", ("_unit",))
        return iter([(None,)]), unit

    consumed: set[Comparison] = set()
    for occ in psj.occurrences:
        consumed.update(psj.column_conditions(occ.tag))

    first = psj.occurrences[0]
    current_schema = Schema(first.tag, tuple(first.columns()))
    base = lookup(first.pred)
    if base.schema.arity != first.arity:
        raise EvaluationError(
            f"relation {first.pred} has arity {base.schema.arity}, query expects {first.arity}"
        )
    rows: Iterator[tuple] = select_iter(
        iter(base.rows), current_schema, psj.column_conditions(first.tag)
    )
    seen_cols = set(current_schema.attributes)
    pending = [c for c in psj.conditions if c not in consumed]
    for occ in psj.occurrences[1:]:
        right = _occurrence_relation(psj, occ, lookup)
        right_cols = set(right.schema.attributes)
        pairs, residual, remaining = [], [], []
        for condition in pending:
            cols = condition.columns()
            if cols <= (seen_cols | right_cols):
                left_side = cols & seen_cols
                right_side = cols & right_cols
                if (
                    condition.op == "="
                    and condition.is_col_col()
                    and len(left_side) == 1
                    and len(right_side) == 1
                ):
                    pairs.append((left_side.pop(), right_side.pop()))
                else:
                    residual.append(condition)
            else:
                remaining.append(condition)
        rows = join_iter(rows, current_schema, right, pairs, conditions=residual)
        current_schema = current_schema.concat(right.schema, "join")
        seen_cols |= right_cols
        pending = remaining
    if pending:
        rows = select_iter(rows, current_schema, pending)
    return rows, current_schema


# ---------------------------------------------------------------------------
# conjunctive CAQL queries (PSJ core + evaluable functions)
# ---------------------------------------------------------------------------


def split_literals(
    query: ConjunctiveQuery, builtins: BuiltinRegistry
) -> tuple[list[Atom], list[Atom], list[Atom]]:
    """Partition body literals into (relations, comparisons, evaluable)."""
    relations, comparisons, evaluable = [], [], []
    for literal in query.literals:
        if literal.pred in {"<", ">", "=<", ">=", "=", "\\="} and literal.arity == 2:
            comparisons.append(literal)
        elif builtins.is_builtin(literal):
            evaluable.append(literal)
        else:
            relations.append(literal)
    return relations, comparisons, evaluable


def core_plan(
    query: ConjunctiveQuery, registry: BuiltinRegistry
) -> tuple[PSJQuery, list[Var], list[Atom]]:
    """Split a conjunctive query into its PSJ core and evaluable residue.

    Variables bound by relation literals ("core variables") flow out of the
    PSJ projection; evaluable literals then run row-wise and may *produce*
    further bindings (e.g. ``S`` in ``plus(A, 1, S)``).  Returns the core
    PSJ query (projecting the core variables in a fixed order), that order,
    and the evaluable literals.
    """
    relations, comparisons, evaluable = split_literals(query, registry)
    relation_bound: set[Var] = set()
    for literal in relations:
        relation_bound |= literal.variables()

    core_vars: list[Var] = []
    seen: set[Var] = set()
    for term in query.answers:
        if isinstance(term, Var) and term in relation_bound and term not in seen:
            seen.add(term)
            core_vars.append(term)
    for literal in evaluable:
        for var in literal.variables():
            if var in relation_bound and var not in seen:
                seen.add(var)
                core_vars.append(var)

    psj = psj_from_literals(query.name, relations, comparisons, tuple(core_vars))
    return psj, core_vars, evaluable


def psj_of(query: ConjunctiveQuery, builtins: BuiltinRegistry | None = None) -> PSJQuery:
    """The PSJ core of a conjunctive query.

    Without evaluable literals this is the full query in PSJ form (answers
    and all).  With evaluable literals, the projection carries the core
    variables the evaluable residue needs; use :func:`evaluate_conjunctive`
    for the complete pipeline.
    """
    registry = builtins if builtins is not None else BuiltinRegistry()
    relations, comparisons, evaluable = split_literals(query, registry)
    if not evaluable:
        return psj_from_literals(query.name, relations, comparisons, query.answers)
    psj, _core_vars, _evaluable = core_plan(query, registry)
    return psj


def evaluate_conjunctive(
    query: ConjunctiveQuery,
    lookup: RelationLookup,
    builtins: BuiltinRegistry | None = None,
) -> Relation:
    """Evaluate a full conjunctive CAQL query (PSJ + evaluable literals)."""
    registry = builtins if builtins is not None else BuiltinRegistry()
    relations, comparisons, evaluable = split_literals(query, registry)
    if not evaluable:
        psj = psj_from_literals(query.name, relations, comparisons, query.answers)
        return evaluate_psj(psj, lookup)

    psj, core_vars, evaluable = core_plan(query, registry)
    core = evaluate_psj(psj, lookup)
    return apply_evaluable(query, core_vars, evaluable, core, registry)


def apply_evaluable(
    query: ConjunctiveQuery,
    core_vars: list[Var],
    evaluable: list[Atom],
    core_result: Relation,
    registry: BuiltinRegistry,
) -> Relation:
    """Run the evaluable residue row-wise over the PSJ core's result."""
    schema = result_schema(query.name, query.arity)
    out = Relation(schema)
    for row in core_result:
        bindings = Substitution()
        for position, var in enumerate(core_vars):
            bindings = bindings.bind(var, Const(row[position]))
        for solution in _run_evaluable(evaluable, bindings, registry):
            answer = []
            for term in query.answers:
                value = solution.apply_term(term) if isinstance(term, Var) else term
                if isinstance(value, Var):
                    raise EvaluationError(
                        f"answer variable {value} of {query.name} was never bound"
                    )
                answer.append(value.value)
            out.insert(tuple(answer))
    return out


def _run_evaluable(
    literals: list[Atom], bindings: Substitution, registry: BuiltinRegistry
) -> Iterator[Substitution]:
    if not literals:
        yield bindings
        return
    head, *rest = literals
    for extended in registry.evaluate(head, bindings):
        yield from _run_evaluable(rest, extended, registry)


# ---------------------------------------------------------------------------
# second-order queries
# ---------------------------------------------------------------------------


def evaluate_aggregate(
    query: AggregateQuery, base_result: Relation
) -> Relation:
    """Apply AGG to the (already evaluated) base result."""
    schema = base_result.schema
    group_attrs = [schema.attributes[i] for i in query.group_by]
    aggregations = [
        (fn, schema.attributes[i] if fn != "count" else "", out)
        for fn, i, out in query.aggregations
    ]
    return relational_aggregate(base_result, group_attrs, aggregations, name=query.base.name)


def evaluate_quantified(query, base_result: Relation, within_result: Relation | None = None) -> Relation:
    """Apply a CAQL quantifier to evaluated operand relations.

    ``EXISTS``/``ALL`` yield a boolean relation (one ``(True,)`` row when
    the quantified statement holds, empty otherwise); ``ANY`` yields at
    most one answer row; ``THE`` yields the unique answer or raises.
    """
    boolean = Schema(query.base.name, ("holds",))
    if query.quantifier == "exists":
        return Relation(boolean, [(True,)] if len(base_result) else [])
    if query.quantifier == "any":
        rows = base_result.rows[:1]
        return Relation(base_result.schema, rows)
    if query.quantifier == "the":
        if len(base_result) != 1:
            raise EvaluationError(
                f"THE[{query.base.name}]: expected exactly one answer, got {len(base_result)}"
            )
        return base_result
    # ALL: containment of base in within.
    assert within_result is not None
    holds_all = all(row in within_result for row in base_result)
    return Relation(boolean, [(True,)] if holds_all else [])


def evaluate_setof(query: SetOfQuery, base_result: Relation) -> Relation:
    """Apply SETOF/BAGOF to the (already evaluated) base result.

    SETOF is the identity on a set-semantics result; BAGOF appends a
    multiplicity column (always 1 here because the substrate is set-based —
    the distinction matters only against bag-semantics remote results).
    """
    if not query.with_counts:
        return base_result
    attrs = base_result.schema.attributes + ("count",)
    schema = Schema(base_result.schema.name, attrs)
    return Relation(schema, (row + (1,) for row in base_result))
