"""CAQL — the Cache Query Language — abstract syntax.

Section 5 of the paper: "A CAQL query is a well formed formula in
quantified, first-order predicate calculus ... CAQL supports arithmetic
operators, logical connectives, special second-order predicates (BAGOF,
SETOF, AGG, etc.)".

The conjunctive (PSJ) core carries all of the caching and subsumption
machinery; the second-order forms wrap a conjunctive body:

* :class:`ConjunctiveQuery` — ``name(answers) :- literal, ...`` where body
  literals reference database relations, cached views, comparisons, and
  evaluable functions;
* :class:`AggregateQuery` — AGG over a conjunctive body (grouped);
* :class:`SetOfQuery` — SETOF/BAGOF: collect answers as a relation (SETOF
  is the plain set-semantics result; BAGOF additionally reports
  multiplicities).

These are exactly the operations the paper says the CMS supports but a
conventional remote DBMS of the era did not — so aggregate/setof bodies are
evaluated by shipping their conjunctive core (cache + remote as usual) and
applying the second-order operator in the CMS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import TranslationError
from repro.logic.terms import Atom, Const, Substitution, Term, Var

#: Comparison predicates the PSJ core can absorb into conditions.
COMPARISON_PREDS = {"<", ">", "=<", ">=", "=", "\\="}


@dataclass(frozen=True)
class ConjunctiveQuery:
    """The conjunctive core: ``name(answers) :- literals``.

    ``answers`` may contain constants (a fully or partially instantiated
    query); every answer *variable* must occur in the body.
    """

    name: str
    answers: tuple[Term, ...]
    literals: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.answers, tuple):
            object.__setattr__(self, "answers", tuple(self.answers))
        if not isinstance(self.literals, tuple):
            object.__setattr__(self, "literals", tuple(self.literals))
        body_vars = self.body_variables()
        for term in self.answers:
            if isinstance(term, Var) and term not in body_vars:
                raise TranslationError(
                    f"answer variable {term} of {self.name} does not occur in the body"
                )

    # -- structure ------------------------------------------------------------
    def body_variables(self) -> set[Var]:
        """All variables occurring in the body."""
        out: set[Var] = set()
        for literal in self.literals:
            out |= literal.variables()
        return out

    def answer_variables(self) -> list[Var]:
        """The answer terms that are variables, in head order."""
        return [t for t in self.answers if isinstance(t, Var)]

    def relation_literals(self) -> list[Atom]:
        """Body literals that are neither comparisons nor negated."""
        return [
            lit
            for lit in self.literals
            if lit.pred not in COMPARISON_PREDS and not lit.negated
        ]

    def comparison_literals(self) -> list[Atom]:
        """Body literals that are comparison predicates."""
        return [lit for lit in self.literals if lit.pred in COMPARISON_PREDS]

    @property
    def arity(self) -> int:
        """Number of answer positions."""
        return len(self.answers)

    # -- instantiation ----------------------------------------------------------
    def instantiate(self, bindings: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to head and body (an IE-query is an
        instance of a view specification with constant bindings,
        Section 5.3.1)."""
        answers = tuple(
            bindings.apply_term(t) if isinstance(t, Var) else t for t in self.answers
        )
        literals = tuple(bindings.apply(lit) for lit in self.literals)
        return ConjunctiveQuery(self.name, answers, literals)

    def bind_answers(self, values: dict[int, object]) -> "ConjunctiveQuery":
        """Instantiate answer positions by index with constant values."""
        bindings = Substitution(
            {
                term: Const(value)
                for position, value in values.items()
                if isinstance(term := self.answers[position], Var)
            }
        )
        return self.instantiate(bindings)

    def __str__(self) -> str:
        head_args = ", ".join(str(a) for a in self.answers)
        body = ", ".join(str(l) for l in self.literals)
        return f"{self.name}({head_args}) :- {body}"


@dataclass(frozen=True)
class AggregateQuery:
    """AGG: group the body's answers and aggregate.

    ``group_by`` indexes into the base query's answer tuple; ``aggregations``
    are ``(function, answer_index, output_name)`` triples using the same
    functions as :func:`repro.relational.operators.aggregate`.
    """

    base: ConjunctiveQuery
    group_by: tuple[int, ...]
    aggregations: tuple[tuple[str, int, str], ...]

    def __post_init__(self) -> None:
        arity = self.base.arity
        for index in self.group_by:
            if not 0 <= index < arity:
                raise TranslationError(f"group_by index {index} out of range")
        for _fn, index, _out in self.aggregations:
            if not 0 <= index < arity:
                raise TranslationError(f"aggregation index {index} out of range")
        if not self.aggregations:
            raise TranslationError("AGG needs at least one aggregation")

    def __str__(self) -> str:
        aggs = ", ".join(f"{fn}(#{i}) as {out}" for fn, i, out in self.aggregations)
        return f"AGG[{self.base.name}; group={self.group_by}; {aggs}]"


@dataclass(frozen=True)
class SetOfQuery:
    """SETOF/BAGOF: the body's full answer relation, optionally with counts."""

    base: ConjunctiveQuery
    with_counts: bool = False  # True = BAGOF semantics (answer multiplicity)

    def __str__(self) -> str:
        kind = "BAGOF" if self.with_counts else "SETOF"
        return f"{kind}[{self.base.name}]"


@dataclass(frozen=True)
class QuantifiedQuery:
    """The CAQL quantifiers of Section 5: EXISTS, ANY, THE, and ALL.

    * ``EXISTS`` — a boolean relation: one ``(True,)`` row iff the base
      has any answer;
    * ``ANY`` — an arbitrary single answer of the base (first in the
      deterministic evaluation order), evaluated lazily when possible;
    * ``THE`` — the base's unique answer; an error if the base has zero or
      more than one;
    * ``ALL`` — universal quantification as set containment: holds iff
      every answer of ``base`` is also an answer of ``within`` (which must
      have the same arity).  This is the range-restricted reading —
      quantification over an explicitly given domain.
    """

    quantifier: str  # "exists" | "any" | "the" | "all"
    base: ConjunctiveQuery
    within: ConjunctiveQuery | None = None

    def __post_init__(self) -> None:
        if self.quantifier not in ("exists", "any", "the", "all"):
            raise TranslationError(f"unknown quantifier {self.quantifier!r}")
        if self.quantifier == "all":
            if self.within is None:
                raise TranslationError("ALL needs a containing query (within=...)")
            if self.within.arity != self.base.arity:
                raise TranslationError(
                    f"ALL: arity mismatch ({self.base.arity} vs {self.within.arity})"
                )
        elif self.within is not None:
            raise TranslationError(f"{self.quantifier.upper()} takes no within-query")

    def __str__(self) -> str:
        if self.quantifier == "all":
            return f"ALL[{self.base.name} ⊆ {self.within.name}]"
        return f"{self.quantifier.upper()}[{self.base.name}]"


#: Any CAQL query.
CAQLQuery = ConjunctiveQuery | AggregateQuery | SetOfQuery | QuantifiedQuery
