"""Implication between conjunctions of PSJ conditions.

Subsumption (Section 5.3.2) reduces to two questions about conjunctions of
``column op column`` / ``column op literal`` conditions:

* does the query's condition set imply each condition of a cache element
  (the element is *no more restrictive* than the query), and
* does the element's condition set imply a query condition (so the
  remainder selection can skip it)?

The paper notes this is "more constrained than the more general implication
problem [SUN89]" because queries are limited to PSJ expressions.  The
engine below is sound and incomplete in the safe direction: ``implies``
never answers True unless the implication holds; a False merely forgoes an
optimization.

Method: build equivalence classes of columns from equality conditions, then
derive per-class bounds (lower/upper with strictness), pinned constants,
and excluded values; check each candidate condition against those, plus a
syntactic check for general column-column comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.relational.expressions import Col, Comparison, Lit, holds


@dataclass
class _Bound:
    value: object
    strict: bool  # True for < / >, False for <= / >=


@dataclass
class _ClassInfo:
    """Derived constraints for one equivalence class of columns."""

    pinned: object | None = None  # equality constant (None = unpinned)
    has_pin: bool = False
    lower: _Bound | None = None
    upper: _Bound | None = None
    excluded: set = field(default_factory=set)
    contradictory: bool = False

    def pin(self, value: object) -> None:
        if self.has_pin and self.pinned != value:
            self.contradictory = True
            return
        self.pinned = value
        self.has_pin = True

    def tighten_lower(self, value: object, strict: bool) -> None:
        current = self.lower
        if current is None or holds(value, ">", current.value) or (
            value == current.value and strict and not current.strict
        ):
            self.lower = _Bound(value, strict)

    def tighten_upper(self, value: object, strict: bool) -> None:
        current = self.upper
        if current is None or holds(value, "<", current.value) or (
            value == current.value and strict and not current.strict
        ):
            self.upper = _Bound(value, strict)

    def is_unsatisfiable(self) -> bool:
        if self.contradictory:
            return True
        if self.has_pin:
            if self.pinned in self.excluded:
                return True
            if self.lower is not None and not _within_lower(self.pinned, self.lower):
                return True
            if self.upper is not None and not _within_upper(self.pinned, self.upper):
                return True
        if self.lower is not None and self.upper is not None:
            if holds(self.lower.value, ">", self.upper.value):
                return True
            if self.lower.value == self.upper.value and (self.lower.strict or self.upper.strict):
                return True
        return False


def _within_lower(value: object, bound: _Bound) -> bool:
    op = ">" if bound.strict else ">="
    return holds(value, op, bound.value)


def _within_upper(value: object, bound: _Bound) -> bool:
    op = "<" if bound.strict else "<="
    return holds(value, op, bound.value)


class ConditionSet:
    """A conjunction of conditions, digested for implication queries."""

    def __init__(self, conditions: Iterable[Comparison]):
        self._conditions = [c.normalized() for c in conditions]
        self._parent: dict[str, str] = {}
        self._general: list[Comparison] = []  # non-equality col-col conditions
        self._build()

    # -- union-find ------------------------------------------------------------
    def _find(self, col: str) -> str:
        parent = self._parent.setdefault(col, col)
        if parent == col:
            return col
        root = self._find(parent)
        self._parent[col] = root
        return root

    def _union(self, a: str, b: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[ra] = rb

    # -- digestion --------------------------------------------------------------
    def _build(self) -> None:
        for condition in self._conditions:
            if condition.op == "=" and condition.is_col_col():
                self._union(condition.left.name, condition.right.name)
        self._classes: dict[str, _ClassInfo] = {}
        for condition in self._conditions:
            left, op, right = condition.left, condition.op, condition.right
            if isinstance(left, Col) and isinstance(right, Lit):
                info = self._class_info(left.name)
                value = right.value
                if op == "=":
                    info.pin(value)
                elif op == "!=":
                    info.excluded.add(value)
                elif op == "<":
                    info.tighten_upper(value, strict=True)
                elif op == "<=":
                    info.tighten_upper(value, strict=False)
                elif op == ">":
                    info.tighten_lower(value, strict=True)
                elif op == ">=":
                    info.tighten_lower(value, strict=False)
            elif isinstance(left, Col) and isinstance(right, Col) and op != "=":
                self._general.append(condition)

    def _class_info(self, col: str) -> _ClassInfo:
        root = self._find(col)
        info = self._classes.get(root)
        if info is None:
            info = _ClassInfo()
            self._classes[root] = info
        return info

    def _info(self, col: str) -> _ClassInfo:
        """Read-only class info (empty default)."""
        return self._classes.get(self._find(col), _ClassInfo())

    # -- queries -----------------------------------------------------------------
    def same_class(self, a: str, b: str) -> bool:
        """True when equalities force the two columns equal."""
        return self._find(a) == self._find(b)

    def pinned_value(self, col: str) -> tuple[bool, object]:
        """(True, v) when the column is forced to the single value v."""
        info = self._info(col)
        if info.has_pin:
            return True, info.pinned
        # A closed [v, v] range also pins the class.
        if (
            info.lower is not None
            and info.upper is not None
            and info.lower.value == info.upper.value
            and not info.lower.strict
            and not info.upper.strict
        ):
            return True, info.lower.value
        return False, None

    def is_satisfiable(self) -> bool:
        """A cheap (sound, incomplete) satisfiability check."""
        return not any(info.is_unsatisfiable() for info in self._classes.values())

    def implies(self, condition: Comparison) -> bool:
        """True only if every assignment satisfying this set satisfies
        ``condition``.  (An unsatisfiable set implies everything.)"""
        if not self.is_satisfiable():
            return True
        condition = condition.normalized()
        left, op, right = condition.left, condition.op, condition.right

        if isinstance(left, Col) and isinstance(right, Lit):
            return self._implies_col_lit(left.name, op, right.value)
        if isinstance(left, Col) and isinstance(right, Col):
            return self._implies_col_col(left.name, op, right.name)
        if isinstance(left, Lit) and isinstance(right, Lit):
            return holds(left.value, op, right.value)
        return False

    def implies_all(self, conditions: Iterable[Comparison]) -> bool:
        """True when every condition is implied."""
        return all(self.implies(c) for c in conditions)

    # -- implication cases ---------------------------------------------------------
    def _implies_col_lit(self, col: str, op: str, value: object) -> bool:
        info = self._info(col)
        pinned, pin = self.pinned_value(col)
        if pinned:
            return holds(pin, op, value)
        if op == "=":
            return False  # unpinned class can take other values
        if op == "!=":
            if value in info.excluded:
                return True
            if info.lower is not None and not _within_lower(value, info.lower):
                return True
            if info.upper is not None and not _within_upper(value, info.upper):
                return True
            return False
        if op in ("<", "<="):
            if info.upper is None:
                return False
            if op == "<":
                # col <= u (< u) must guarantee col < value.
                if info.upper.strict:
                    return holds(info.upper.value, "<=", value)
                return holds(info.upper.value, "<", value)
            return holds(info.upper.value, "<=", value)
        if op in (">", ">="):
            if info.lower is None:
                return False
            if op == ">":
                if info.lower.strict:
                    return holds(info.lower.value, ">=", value)
                return holds(info.lower.value, ">", value)
            return holds(info.lower.value, ">=", value)
        return False

    def _implies_col_col(self, a: str, op: str, b: str) -> bool:
        if op == "=":
            if self.same_class(a, b):
                return True
            pa, va = self.pinned_value(a)
            pb, vb = self.pinned_value(b)
            return pa and pb and va == vb
        # Syntactic presence (through equivalence classes).
        for general in self._general:
            if general.op == op and self.same_class(general.left.name, a) and self.same_class(
                general.right.name, b
            ):
                return True
        # Derivation from pinned values / bounds.
        pa, va = self.pinned_value(a)
        pb, vb = self.pinned_value(b)
        if pa and pb:
            return holds(va, op, vb)
        info_a, info_b = self._info(a), self._info(b)
        if op in ("<", "<="):
            upper_a = _Bound(va, False) if pa else info_a.upper
            lower_b = _Bound(vb, False) if pb else info_b.lower
            if upper_a is None or lower_b is None:
                return False
            if op == "<":
                if upper_a.strict or lower_b.strict:
                    return holds(upper_a.value, "<=", lower_b.value)
                return holds(upper_a.value, "<", lower_b.value)
            return holds(upper_a.value, "<=", lower_b.value)
        if op in (">", ">="):
            return self._implies_col_col(b, "<" if op == ">" else "<=", a)
        if op == "!=":
            # Disjoint ranges imply inequality.
            upper_a = _Bound(va, False) if pa else info_a.upper
            lower_b = _Bound(vb, False) if pb else info_b.lower
            if upper_a is not None and lower_b is not None:
                if holds(upper_a.value, "<", lower_b.value) or (
                    upper_a.value == lower_b.value and (upper_a.strict or lower_b.strict)
                ):
                    return True
            upper_b = _Bound(vb, False) if pb else info_b.upper
            lower_a = _Bound(va, False) if pa else info_a.lower
            if upper_b is not None and lower_a is not None:
                if holds(upper_b.value, "<", lower_a.value) or (
                    upper_b.value == lower_a.value and (upper_b.strict or lower_a.strict)
                ):
                    return True
            return False
        return False
