"""Textual CAQL: a thin layer over the logic parser.

A conjunctive CAQL query is written exactly like a rule::

    d2(X, Y) :- b2(X, Z), b3(Z, c2, Y).

and an instantiated IE-query like an atom with constants::

    d2(X, c6)

(Section 5.3.1: "An IE-query is an instance of one of the view
specifications with constant bindings.")
"""

from __future__ import annotations

from repro.common.errors import ParseError
from repro.logic.parser import parse_atom, parse_clause
from repro.logic.terms import Atom
from repro.caql.ast import ConjunctiveQuery


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse ``name(args) :- body.`` into a conjunctive query."""
    clause = parse_clause(text if text.rstrip().endswith(".") else text + ".")
    if not clause.body:
        raise ParseError(f"a CAQL query needs a body: {text!r}")
    return ConjunctiveQuery(clause.head.pred, clause.head.args, clause.body)


def parse_query_pattern(text: str) -> Atom:
    """Parse an instantiated query pattern like ``d2(X, c6)``."""
    return parse_atom(text)
