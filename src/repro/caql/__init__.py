"""CAQL — the Cache Query Language: AST, PSJ form, evaluation, translation."""

from repro.caql.ast import (
    COMPARISON_PREDS,
    AggregateQuery,
    CAQLQuery,
    ConjunctiveQuery,
    QuantifiedQuery,
    SetOfQuery,
)
from repro.caql.eval import (
    apply_evaluable,
    core_plan,
    evaluate_aggregate,
    evaluate_conjunctive,
    evaluate_psj,
    evaluate_quantified,
    evaluate_setof,
    lazy_psj,
    psj_of,
    result_schema,
    split_literals,
)
from repro.caql.implication import ConditionSet
from repro.caql.parser import parse_query, parse_query_pattern
from repro.caql.psj import (
    ConstProj,
    Occurrence,
    PSJQuery,
    column,
    parse_column,
    psj_from_literals,
)
from repro.caql.translate import SQLTranslation, sql_from_psj

__all__ = [
    "AggregateQuery",
    "CAQLQuery",
    "COMPARISON_PREDS",
    "ConditionSet",
    "ConjunctiveQuery",
    "ConstProj",
    "Occurrence",
    "PSJQuery",
    "SQLTranslation",
    "SetOfQuery",
    "column",
    "evaluate_aggregate",
    "QuantifiedQuery",
    "apply_evaluable",
    "core_plan",
    "evaluate_conjunctive",
    "evaluate_quantified",
    "evaluate_psj",
    "evaluate_setof",
    "lazy_psj",
    "parse_column",
    "parse_query",
    "parse_query_pattern",
    "psj_from_literals",
    "psj_of",
    "result_schema",
    "split_literals",
    "sql_from_psj",
]
