"""The multi-session BrAID server.

Turns the paper's single-IE CMS into a shared bridge serving many named
IE sessions over one cache: session management (per-session advice and
metrics), admission control (bounded queue, backpressure, per-session
in-flight limits), and deterministic cooperative scheduling (round-robin
and weighted-fair) on the simulated clock.  See ``docs/server.md``.
"""

from repro.server.admission import AdmissionController
from repro.server.braid_server import BraidServer, ServerConfig, StepRecord
from repro.server.scheduler import (
    POLICIES,
    RoundRobinPolicy,
    Scheduler,
    WeightedFairPolicy,
)
from repro.server.session import Request, Session, SessionManager

__all__ = [
    "AdmissionController",
    "BraidServer",
    "POLICIES",
    "Request",
    "RoundRobinPolicy",
    "Scheduler",
    "ServerConfig",
    "Session",
    "SessionManager",
    "StepRecord",
    "WeightedFairPolicy",
]
