"""Sessions and the session manager.

The paper's CMS serves *one* inference engine; the BrAID server grows
that into many named IE sessions sharing one cache.  Each session owns

* its own advice context (view specifications, path-expression tracker,
  replacement preferences) — advice is a per-session contract between one
  IE and the CMS, so it must never leak across clients;
* its own :class:`~repro.common.metrics.Metrics` child scope — a session's
  counters are its share alone, while the server root aggregates;
* its own request bookkeeping (backlog, in-flight streams, completions,
  per-request simulated latency).

What sessions *share* is the cache (plus the remote link): cross-session
reuse — one client's cached view answering another client's query through
subsumption — is exactly where a semantic cache pays off under multi-user
traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.common.errors import (
    ServerError,
    SessionStateError,
    UnknownSessionError,
)
from repro.common.metrics import (
    SERVER_SESSION_INFLIGHT_HIGH_WATER,
    SERVER_SESSIONS_CLOSED,
    SERVER_SESSIONS_OPENED,
    Metrics,
)
from repro.advice.language import AdviceSet
from repro.caql.ast import CAQLQuery
from repro.core.cache import Cache
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.core.executor import ResultStream
from repro.remote.server import RemoteDBMS


@dataclass
class Request:
    """One submitted query and its lifecycle timestamps (simulated time)."""

    request_id: str
    session_name: str
    query: CAQLQuery
    submitted_at: float
    started_at: float | None = None
    completed_at: float | None = None
    rows: list[tuple] | None = None
    degraded: bool = False
    error: str | None = None
    #: The undrained stream between the execute and drain phases.
    stream: ResultStream | None = field(default=None, repr=False)

    @property
    def latency(self) -> float | None:
        """Submit-to-completion simulated seconds (None while pending).

        Includes time spent queued behind other sessions' steps: the
        shared clock advances while they run, which is precisely the
        waiting a fairness policy is supposed to bound.
        """
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def finished(self) -> bool:
        """True once drained (or failed)."""
        return self.completed_at is not None


class Session:
    """One named IE client of the server: advice context + request state."""

    def __init__(
        self,
        name: str,
        cms: CacheManagementSystem,
        metrics: Metrics,
        weight: float = 1.0,
    ):
        if weight <= 0:
            raise ServerError(f"session weight must be positive, got {weight}")
        self.name = name
        self.cms = cms
        self.metrics = metrics
        self.weight = weight
        self.open = True
        #: Admitted requests not yet started (FIFO within the session).
        self.backlog: deque[Request] = deque()
        #: Started (executed) requests whose streams are not yet drained.
        self.in_flight: deque[Request] = deque()
        self.completed: list[Request] = []
        #: Highest simultaneous in-flight count this session ever reached.
        self.in_flight_peak = 0
        self._next_request = 1

    def note_in_flight(self) -> None:
        """Record the current in-flight depth against the session's peak
        (and the ``server.session_inflight_high_water`` gauge — the parent
        scope keeps the maximum over all sessions)."""
        depth = len(self.in_flight)
        if depth > self.in_flight_peak:
            self.in_flight_peak = depth
        self.metrics.gauge_max(SERVER_SESSION_INFLIGHT_HIGH_WATER, depth)

    def new_request_id(self) -> str:
        request_id = f"{self.name}#{self._next_request}"
        self._next_request += 1
        return request_id

    @property
    def pending_count(self) -> int:
        """Requests admitted but not finished (backlog + in-flight)."""
        return len(self.backlog) + len(self.in_flight)

    def begin_advice(self, advice: AdviceSet | None) -> None:
        """(Re)start this session's advice context."""
        self.cms.begin_session(advice)

    def activate(self) -> None:
        """Make this session's advice drive shared-cache replacement."""
        self.cms.activate()

    # -- reporting --------------------------------------------------------------
    def latency_summary(self) -> dict[str, float]:
        """Mean/max simulated latency over completed requests."""
        latencies = [r.latency for r in self.completed if r.latency is not None]
        if not latencies:
            return {"completed": 0, "mean_latency": 0.0, "max_latency": 0.0}
        return {
            "completed": len(latencies),
            "mean_latency": sum(latencies) / len(latencies),
            "max_latency": max(latencies),
        }

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return (
            f"Session({self.name!r}, {state}, weight={self.weight}, "
            f"backlog={len(self.backlog)}, in_flight={len(self.in_flight)}, "
            f"completed={len(self.completed)})"
        )


class SessionManager:
    """Opens, resolves, and closes sessions over one shared cache.

    Every session's CMS is constructed against the same :class:`Cache`
    and :class:`RemoteDBMS`; the manager hands each one a child metrics
    scope so per-session numbers never mix.
    """

    def __init__(
        self,
        remote: RemoteDBMS,
        cache: Cache,
        features: CMSFeatures | None = None,
        metrics: Metrics | None = None,
        pin_streams: bool = True,
        subplan_registry=None,
    ):
        self.remote = remote
        self.cache = cache
        self.features = features
        self.metrics = metrics if metrics is not None else remote.metrics
        #: The server's shared in-flight subplan registry (MQO), handed to
        #: every session's CMS so concurrent identical remote subplans are
        #: computed once.  None disables sharing.
        self.subplan_registry = subplan_registry
        #: Server sessions drain every stream (the drain phase), so pins
        #: held for a stream's lifetime are always released; a directly
        #: embedded single session passes False (the IE may abandon
        #: streams, and an unreleased pin would block eviction forever).
        self.pin_streams = pin_streams
        self._sessions: dict[str, Session] = {}
        self._ever_opened = 0

    # -- lifecycle ----------------------------------------------------------------
    def open(
        self,
        name: str,
        advice: AdviceSet | None = None,
        weight: float = 1.0,
    ) -> Session:
        """Open a named session; raises if the name is already open."""
        if name in self._sessions:
            raise SessionStateError(f"session {name!r} is already open")
        cms = CacheManagementSystem(
            self.remote,
            features=self.features,
            cache=self.cache,
            metrics=self.metrics.scope(name),
            pin_streams=self.pin_streams,
            subplan_registry=self.subplan_registry,
        )
        session = Session(name, cms, cms.metrics, weight=weight)
        session.begin_advice(advice)
        self._sessions[name] = session
        self._ever_opened += 1
        self.metrics.incr(SERVER_SESSIONS_OPENED)
        return session

    def close(self, name: str) -> Session:
        """Close a session; its pending requests are abandoned.

        Undrained streams are drained first so any stream-lifetime pins
        on shared cache elements are released (a closed session must not
        keep pinning memory other sessions need).
        """
        session = self.get(name)
        for request in session.in_flight:
            if request.stream is not None:
                request.stream.fetch_all()
        session.in_flight.clear()
        session.backlog.clear()
        session.open = False
        del self._sessions[name]
        self.metrics.drop_scope(name)
        self.metrics.incr(SERVER_SESSIONS_CLOSED)
        return session

    # -- resolution ---------------------------------------------------------------
    def get(self, name: str) -> Session:
        """The open session called ``name``; raises UnknownSessionError."""
        session = self._sessions.get(name)
        if session is None:
            raise UnknownSessionError(name)
        return session

    def sessions(self) -> list[Session]:
        """All open sessions, in opening order."""
        return list(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions
