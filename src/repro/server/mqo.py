"""Shared multi-query optimization: the in-flight subplan registry.

Concurrent server sessions frequently ship the *same* remote subplan —
the uncovered remainder of a popular view, a generalized scan — within a
few scheduler steps of each other.  The registry lets the second session
reuse the rows the first one already paid a round trip for, keyed by the
subplan's canonical PSJ definition (:func:`repro.core.cache.key_of`), so
each shared subplan is computed once per burst of concurrent demand.

Soundness rests on the remote data being immutable while the server
runs: the only mutation API is ``RemoteDBMS.load_table``, called during
setup.  The registry is still bounded and transient — a FIFO of the most
recent publications, cleared whenever the server goes idle — because it
is a *concurrency* optimization, not a second cache: durable reuse is
the Cache's job, with eviction, pinning, and epoch invalidation.  Keeping
the registry transient means it never needs any of those mechanisms.

Everything is deterministic: publications land in scheduler order, and
lookups depend only on canonical keys.
"""

from __future__ import annotations

from repro.relational.relation import Relation
from repro.caql.psj import PSJQuery
from repro.core.cache import key_of


class SharedSubplanRegistry:
    """A bounded FIFO of recently fetched remote subplans, by definition.

    Only *unreduced* fetches are published (a semijoin-reduced result
    depends on the publishing session's binding values, so it is not the
    subplan's full answer).  The executor enforces that; the registry
    just maps canonical keys to relations.
    """

    def __init__(self, max_entries: int = 64):
        self.max_entries = max_entries
        #: canonical key -> relation, in publication order (dict order is
        #: the FIFO; Python dicts preserve insertion order).
        self._entries: dict[tuple, Relation] = {}
        #: Lifetime counters, for reports and tests.
        self.publications = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, sub_query: PSJQuery) -> Relation | None:
        """The in-flight result for a structurally identical subplan."""
        relation = self._entries.get(key_of(sub_query))
        if relation is not None:
            self.hits += 1
        return relation

    def publish(self, sub_query: PSJQuery, relation: Relation) -> None:
        """Record one unreduced fetch result, evicting the oldest entry
        beyond the bound.  Re-publishing a key refreshes its rows without
        changing its FIFO position (the data is immutable anyway)."""
        key = key_of(sub_query)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = relation
        self.publications += 1

    def clear(self) -> None:
        """Drop every entry (the server went idle: the burst is over)."""
        self._entries.clear()

    def check_invariants(self) -> None:
        """Audit the registry (cheap, read-only): the FIFO bound holds and
        every entry is a materialized relation."""
        from repro.common.errors import InvariantViolation

        if len(self._entries) > self.max_entries:
            raise InvariantViolation(
                f"subplan registry holds {len(self._entries)} entries, "
                f"bound is {self.max_entries}"
            )
        for key, relation in self._entries.items():
            if not isinstance(relation, Relation):
                raise InvariantViolation(
                    f"subplan registry entry {key!r} is not a Relation"
                )
