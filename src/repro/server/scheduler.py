"""Deterministic cooperative scheduling of session steps.

The server is single-threaded on the simulated clock: concurrency is
*cooperative interleaving* of per-session steps (execute one query, or
drain one result stream), which keeps every run exactly reproducible —
the same seed and submissions yield byte-identical schedules.

Two policies:

* **round-robin** — sessions take turns in opening order; a session with
  nothing runnable is skipped.  Simple, and fair in steps.
* **weighted-fair** — stride scheduling: each session advances a virtual
  *pass* by ``stride = K / weight`` per step it receives, and the lowest
  pass runs next.  A weight-2 session gets twice the steps of a weight-1
  session over any window; sessions joining late start at the current
  minimum pass so they neither starve nor monopolize.

Ties (equal pass values) are broken by a seeded RNG over the tied names
in sorted order, so even the tie-breaks replay identically run to run.
"""

from __future__ import annotations

import random

from repro.common.errors import ServerError
from repro.server.session import Session

#: Stride numerator: pass advances by STRIDE_SCALE / weight per step.
STRIDE_SCALE = 1 << 20

#: The selectable policy names.
POLICIES = ("round-robin", "weighted-fair")


class RoundRobinPolicy:
    """Take turns in opening order, skipping unrunnable sessions."""

    def __init__(self, seed: int = 0):
        self._order: list[str] = []
        self._cursor = 0

    def note_session(self, session: Session) -> None:
        if session.name not in self._order:
            self._order.append(session.name)

    def forget_session(self, name: str) -> None:
        if name in self._order:
            index = self._order.index(name)
            self._order.remove(name)
            if index < self._cursor:
                self._cursor -= 1
            if self._order:
                self._cursor %= len(self._order)
            else:
                self._cursor = 0

    def pick(self, eligible: list[Session]) -> Session:
        by_name = {session.name: session for session in eligible}
        for offset in range(len(self._order)):
            index = (self._cursor + offset) % len(self._order)
            session = by_name.get(self._order[index])
            if session is not None:
                self._cursor = (index + 1) % len(self._order)
                return session
        raise ServerError("round-robin pick from an empty eligible set")


class WeightedFairPolicy:
    """Stride scheduling: lowest virtual pass runs next."""

    def __init__(self, seed: int = 0):
        self._pass: dict[str, float] = {}
        self._rng = random.Random(seed)

    def note_session(self, session: Session) -> None:
        if session.name in self._pass:
            return
        # Join at the current minimum so a newcomer neither waits behind
        # everyone's accumulated pass nor gets an unbounded catch-up burst.
        floor = min(self._pass.values()) if self._pass else 0.0
        self._pass[session.name] = floor

    def forget_session(self, name: str) -> None:
        self._pass.pop(name, None)

    def pick(self, eligible: list[Session]) -> Session:
        best = min(self._pass[s.name] for s in eligible)
        tied = sorted(
            (s for s in eligible if self._pass[s.name] == best),
            key=lambda s: s.name,
        )
        session = tied[0] if len(tied) == 1 else tied[self._rng.randrange(len(tied))]
        self._pass[session.name] += STRIDE_SCALE / session.weight
        return session


class Scheduler:
    """Policy wrapper: tracks sessions and picks the next one to step."""

    def __init__(self, policy: str = "round-robin", seed: int = 0):
        if policy not in POLICIES:
            raise ServerError(f"unknown scheduler policy {policy!r}; have {POLICIES}")
        self.policy_name = policy
        self.seed = seed
        self._policy = (
            RoundRobinPolicy(seed)
            if policy == "round-robin"
            else WeightedFairPolicy(seed)
        )

    def note_session(self, session: Session) -> None:
        """Register a session with the policy (idempotent)."""
        self._policy.note_session(session)

    def forget_session(self, name: str) -> None:
        """Drop a closed session from the policy's state."""
        self._policy.forget_session(name)

    def pick(self, eligible: list[Session]) -> Session:
        """The session whose step runs next (``eligible`` is non-empty)."""
        if not eligible:
            raise ServerError("scheduler pick from an empty eligible set")
        return self._policy.pick(eligible)
