"""The multi-session BrAID server.

Ties the pieces together: a :class:`SessionManager` (named IE sessions,
each with private advice and metrics, all over one shared cache), an
:class:`AdmissionController` (bounded queue, typed overload rejections,
per-session in-flight limits), and a deterministic cooperative
:class:`Scheduler` (round-robin or weighted-fair) that interleaves
session steps on the shared :class:`SimClock`.

A request's life:

1. ``submit(session, query)`` — admission control; rejected with
   :class:`ServerOverloadError` when the queue bound is hit, otherwise
   queued on the session's backlog stamped with the current simulated
   time;
2. an **execute** step — the scheduler picks the session, the session's
   CMS plans and runs the query (cache elements it reads are pinned;
   lazy results hold their pins until drained);
3. a **drain** step — the stream is consumed and the request completes;
   latency is drain-time minus submit-time, so waiting behind other
   sessions' steps counts, which is what fairness policies bound.

Steps from different sessions interleave between a request's execute and
drain — exactly the window where one session's replacement could trash
another session's in-flight stream, and exactly what cache pinning and
epoch-tagged invalidation make safe.

Everything is deterministic: same seed, sessions, and submissions →
byte-identical schedule traces and per-session results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import BraidError, ServerError
from repro.common.metrics import (
    SERVER_REQUESTS_COMPLETED,
    SERVER_SCHEDULER_STEPS,
    Metrics,
)
from repro.advice.language import AdviceSet
from repro.caql.ast import CAQLQuery
from repro.obs.slo import SLOMonitor, SLOPolicy
from repro.obs.telemetry import MetricsSampler
from repro.obs.tracer import Tracer
from repro.relational.relation import Relation
from repro.remote.server import RemoteDBMS
from repro.remote.sqlite_backend import SqliteEngine
from repro.core.cache import Cache
from repro.core.cms import CMSFeatures
from repro.server.admission import AdmissionController
from repro.server.mqo import SharedSubplanRegistry
from repro.server.scheduler import POLICIES, Scheduler
from repro.server.session import Request, Session, SessionManager


@dataclass
class ServerConfig:
    """Construction-time options for a BrAID server."""

    cache_capacity_bytes: int = 4_000_000
    features: CMSFeatures | None = None
    backend: str = "pure"  # or "sqlite"
    profile: CostProfile | None = None
    scheduler_policy: str = "round-robin"  # or "weighted-fair"
    scheduler_seed: int = 0
    max_queue_depth: int = 256
    max_inflight_per_session: int = 4
    #: Collect a full span trace of every request's lifecycle.  Off by
    #: default: the disabled tracer makes every hook a no-op.
    tracing: bool = False
    #: Sample the metrics ledger every this many simulated seconds
    #: (None disables telemetry; sampling never advances the clock).
    telemetry_interval: float | None = None
    #: Per-session latency objectives; None disables SLO monitoring.
    slo: SLOPolicy | None = None
    #: Shared multi-query optimization: concurrent sessions shipping the
    #: same remote subplan reuse one in-flight result (see
    #: :mod:`repro.server.mqo`).  The registry is cleared whenever the
    #: server goes idle, so sharing only ever spans one concurrent burst.
    mqo: bool = True
    #: Bound on the in-flight subplan registry (FIFO beyond it).
    mqo_max_entries: int = 64

    def __post_init__(self) -> None:
        if self.scheduler_policy not in POLICIES:
            raise ServerError(
                f"unknown scheduler policy {self.scheduler_policy!r}; "
                f"have {POLICIES}"
            )


@dataclass
class StepRecord:
    """One scheduler decision, for the reproducible schedule trace."""

    index: int
    phase: str  # "execute" | "drain"
    session: str
    request_id: str
    clock: float

    def line(self) -> str:
        return f"{self.index}|{self.phase}|{self.session}|{self.request_id}|{self.clock:.9f}"


class BraidServer:
    """A shared CMS serving many concurrent IE sessions."""

    def __init__(
        self,
        tables: list[Relation] | None = None,
        config: ServerConfig | None = None,
        remote: RemoteDBMS | None = None,
        pin_streams: bool = True,
        tracer=None,
    ):
        self.config = config if config is not None else ServerConfig()
        if remote is not None:
            self.remote = remote
        else:
            engine = SqliteEngine() if self.config.backend == "sqlite" else None
            if self.config.backend not in ("pure", "sqlite"):
                raise ServerError(f"unknown backend {self.config.backend!r}")
            profile = (
                self.config.profile
                if self.config.profile is not None
                else CostProfile()
            )
            self.remote = RemoteDBMS(engine=engine, profile=profile)
        for table in tables or []:
            self.remote.load_table(table)

        self.clock: SimClock = self.remote.clock
        self.metrics: Metrics = self.remote.metrics
        # Tracer adoption order: an explicit tracer wins; else an enabled
        # tracer already attached to the remote; else ``config.tracing``
        # creates one; else the zero-cost disabled tracer.  The remote is
        # re-pointed at the adopted tracer so every session's RDI (built
        # later, against the remote) shares the same trace.
        if tracer is None:
            if self.remote.tracer.enabled:
                tracer = self.remote.tracer
            elif self.config.tracing:
                tracer = Tracer(self.clock)
            else:
                tracer = Tracer.disabled()
        self.tracer = tracer
        self.remote.tracer = tracer
        self.cache = Cache(
            self.config.cache_capacity_bytes,
            metrics=self.metrics,
            tracer=tracer,
            clock=self.clock,
        )
        #: In-flight shared-subplan registry (MQO), or None when disabled.
        self.subplan_registry = (
            SharedSubplanRegistry(max_entries=self.config.mqo_max_entries)
            if self.config.mqo
            else None
        )
        self.sessions = SessionManager(
            self.remote,
            self.cache,
            features=self.config.features,
            metrics=self.metrics,
            pin_streams=pin_streams,
            subplan_registry=self.subplan_registry,
        )
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            max_inflight_per_session=self.config.max_inflight_per_session,
            metrics=self.metrics,
            tracer=tracer,
        )
        self.scheduler = Scheduler(
            policy=self.config.scheduler_policy,
            seed=self.config.scheduler_seed,
        )
        self.schedule_trace: list[StepRecord] = []
        #: Fixed-cadence ledger sampler; read-only over metrics, so it can
        #: never perturb the simulation (E16's invariant extends to it).
        self.telemetry: MetricsSampler | None = (
            MetricsSampler(
                self.metrics, self.clock, self.config.telemetry_interval
            )
            if self.config.telemetry_interval is not None
            else None
        )
        self.slo_monitor: SLOMonitor | None = (
            SLOMonitor(self.config.slo, self.clock, self.metrics, tracer)
            if self.config.slo is not None
            else None
        )

    # -- session lifecycle --------------------------------------------------------
    def open_session(
        self,
        name: str,
        advice: AdviceSet | None = None,
        weight: float = 1.0,
    ) -> Session:
        """Open a named IE session (its advice context starts now)."""
        session = self.sessions.open(name, advice=advice, weight=weight)
        self.scheduler.note_session(session)
        return session

    def close_session(self, name: str) -> Session:
        """Close a session, abandoning whatever it still had pending."""
        session = self.sessions.get(name)
        abandoned = session.pending_count
        closed = self.sessions.close(name)
        for _ in range(abandoned):
            self.admission.release()
        self.scheduler.forget_session(name)
        return closed

    # -- the request interface ----------------------------------------------------
    def submit(self, session_name: str, query: CAQLQuery) -> Request:
        """Queue one CAQL query for a session; may raise ServerOverloadError."""
        session = self.sessions.get(session_name)
        self.admission.admit(session)
        request = Request(
            request_id=session.new_request_id(),
            session_name=session.name,
            query=query,
            submitted_at=self.clock.now,
        )
        session.backlog.append(request)
        return request

    def step(self) -> bool:
        """Run one scheduler step; False when no session has runnable work."""
        eligible = [
            s for s in self.sessions.sessions() if self.admission.is_eligible(s)
        ]
        if not eligible:
            return False
        session = self.scheduler.pick(eligible)
        # The running session's advice governs shared-cache replacement
        # for the duration of its step.
        session.activate()
        if session.backlog and self.admission.may_start(session):
            request = session.backlog.popleft()
            phase = "execute"
        else:
            request = session.in_flight.popleft()
            phase = "drain"
        with self.tracer.span(
            "server.step",
            phase=phase,
            session=session.name,
            request=request.request_id,
            index=len(self.schedule_trace),
        ) as span:
            if self.tracer.enabled:
                span.set("eligible", [s.name for s in eligible])
            if phase == "execute":
                self._execute(session, request)
            else:
                self._drain(session, request)
        self.metrics.incr(SERVER_SCHEDULER_STEPS)
        if self.telemetry is not None:
            self.telemetry.maybe_sample()
        self.schedule_trace.append(
            StepRecord(
                index=len(self.schedule_trace),
                phase=phase,
                session=session.name,
                request_id=request.request_id,
                clock=self.clock.now,
            )
        )
        return True

    def run_until_idle(self, max_steps: int | None = None) -> int:
        """Step until nothing is runnable; returns the number of steps.

        Going idle ends the concurrent burst, so the in-flight subplan
        registry is cleared: MQO sharing is a concurrency optimization,
        never a second cache (durable reuse belongs to the Cache, which
        has eviction, pinning, and invalidation; the registry has none).
        """
        steps = 0
        while self.step():
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        if self.subplan_registry is not None and not self._has_runnable():
            self.subplan_registry.clear()
        return steps

    def _has_runnable(self) -> bool:
        """True when any session still has runnable work."""
        return any(
            self.admission.is_eligible(s) for s in self.sessions.sessions()
        )

    def results(self, session_name: str) -> list[Request]:
        """Completed requests of an open session, in completion order."""
        return list(self.sessions.get(session_name).completed)

    # -- step phases --------------------------------------------------------------
    def _execute(self, session: Session, request: Request) -> None:
        request.started_at = self.clock.now
        try:
            request.stream = session.cms.query(request.query)
        except BraidError as error:
            self._finish(session, request, error=error)
            return
        session.in_flight.append(request)
        session.note_in_flight()

    def _drain(self, session: Session, request: Request) -> None:
        try:
            assert request.stream is not None
            request.rows = request.stream.fetch_all()
            request.degraded = request.stream.degraded
        except BraidError as error:
            self._finish(session, request, error=error)
            return
        self._finish(session, request)

    def _finish(
        self, session: Session, request: Request, error: BraidError | None = None
    ) -> None:
        request.completed_at = self.clock.now
        if error is not None:
            request.error = f"{type(error).__name__}: {error}"
        session.completed.append(request)
        self.admission.release()
        self.metrics.incr(SERVER_REQUESTS_COMPLETED)
        if self.slo_monitor is not None and error is None:
            self.slo_monitor.observe(session.name, request.latency)

    # -- reproducibility artifacts --------------------------------------------------
    def schedule_lines(self) -> list[str]:
        """The schedule trace as stable text lines."""
        return [record.line() for record in self.schedule_trace]

    def schedule_fingerprint(self) -> str:
        """SHA-256 over the schedule trace: equal across same-seed runs."""
        digest = hashlib.sha256()
        for line in self.schedule_lines():
            digest.update(line.encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def trace_jsonl(self) -> str:
        """The span trace in canonical JSONL (empty when tracing is off)."""
        return self.tracer.to_jsonl()

    def trace_fingerprint(self) -> str:
        """SHA-256 over the span trace, the schedule-fingerprint analogue."""
        return self.tracer.fingerprint()

    def telemetry_jsonl(self) -> str:
        """The telemetry series in canonical JSONL ("" when sampling is off)."""
        return self.telemetry.to_jsonl() if self.telemetry is not None else ""

    def telemetry_fingerprint(self) -> str:
        """SHA-256 over the telemetry series ("" when sampling is off)."""
        return self.telemetry.fingerprint() if self.telemetry is not None else ""

    def slo_report(self) -> dict[str, dict[str, float]]:
        """Per-session SLO window statistics ({} when monitoring is off)."""
        return self.slo_monitor.report() if self.slo_monitor is not None else {}

    def session_results_snapshot(self) -> dict[str, list[tuple]]:
        """Canonical per-session results, for byte-identical comparisons."""
        snapshot: dict[str, list[tuple]] = {}
        for session in self.sessions.sessions():
            snapshot[session.name] = [
                (
                    request.request_id,
                    request.query.name,
                    request.latency,
                    request.degraded,
                    request.error,
                    tuple(request.rows) if request.rows is not None else None,
                )
                for request in session.completed
            ]
        return snapshot

    # -- fairness ---------------------------------------------------------------------
    def fairness_report(self) -> dict[str, object]:
        """Per-session latency summaries plus the max/min mean-latency ratio."""
        per_session: dict[str, dict[str, float]] = {}
        means = []
        for session in self.sessions.sessions():
            summary = session.latency_summary()
            per_session[session.name] = summary
            if summary["completed"]:
                means.append(summary["mean_latency"])
        ratio = (max(means) / min(means)) if means and min(means) > 0 else 1.0
        return {
            "sessions": per_session,
            "max_min_latency_ratio": ratio,
            "steps": len(self.schedule_trace),
            "queue_utilization": self.admission.utilization(),
        }
