"""Admission control: bounded queueing and backpressure.

A server in front of a shared cache has two saturation surfaces: the
total backlog it is willing to hold (memory), and how much of the
scheduler one session may occupy at once (fairness).  Both are enforced
here, before any work is done:

* the **request queue bound** caps pending requests across all sessions —
  a submit beyond it is rejected immediately with a typed
  :class:`~repro.common.errors.ServerOverloadError`, which is the
  backpressure signal clients retry/back off on;
* the **per-session in-flight limit** caps how many of one session's
  requests may be started-but-undrained at once, so a client that floods
  the server cannot monopolize scheduler steps or pin unbounded cache
  state mid-stream.
"""

from __future__ import annotations

from repro.common.errors import ServerOverloadError
from repro.common.metrics import (
    SERVER_QUEUE_DEPTH_HIGH_WATER,
    SERVER_REQUESTS_ACCEPTED,
    SERVER_REQUESTS_REJECTED,
    Metrics,
)
from repro.obs.tracer import Tracer
from repro.server.session import Session


class AdmissionController:
    """Decides, per request, whether the server takes on more work."""

    def __init__(
        self,
        max_queue_depth: int = 256,
        max_inflight_per_session: int = 4,
        metrics: Metrics | None = None,
        tracer=None,
    ):
        if max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        if max_inflight_per_session <= 0:
            raise ValueError("max_inflight_per_session must be positive")
        self.max_queue_depth = max_queue_depth
        self.max_inflight_per_session = max_inflight_per_session
        self.metrics = metrics if metrics is not None else Metrics()
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        #: Pending (admitted, unfinished) requests across all sessions.
        self.queued = 0

    # -- admission --------------------------------------------------------------
    def admit(self, session: Session) -> None:
        """Account one incoming request; raises when the server is full.

        Rejection is *before* enqueue — an overloaded server does cheap
        bookkeeping only, never planning or remote work, for a request it
        cannot hold.
        """
        if self.queued >= self.max_queue_depth:
            self.metrics.incr(SERVER_REQUESTS_REJECTED)
            self.tracer.event(
                "server.rejected",
                session=session.name,
                queue_depth=self.queued,
                max_queue_depth=self.max_queue_depth,
            )
            raise ServerOverloadError(
                f"request queue full ({self.queued}/{self.max_queue_depth}); "
                f"session {session.name!r} must back off",
                queue_depth=self.queued,
                max_queue_depth=self.max_queue_depth,
            )
        self.queued += 1
        self.metrics.incr(SERVER_REQUESTS_ACCEPTED)
        self.metrics.gauge_max(SERVER_QUEUE_DEPTH_HIGH_WATER, self.queued)

    def release(self) -> None:
        """Account one finished (or abandoned) request."""
        if self.queued <= 0:
            raise ValueError("release without a matching admit")
        self.queued -= 1

    # -- eligibility ------------------------------------------------------------
    def may_start(self, session: Session) -> bool:
        """May the scheduler start another of this session's requests?

        False while the session sits at its in-flight limit; it can still
        be scheduled to *drain* (draining reduces in-flight, so progress
        is always possible).
        """
        return len(session.in_flight) < self.max_inflight_per_session

    def is_eligible(self, session: Session) -> bool:
        """Does this session have any step the scheduler could run now?"""
        if not session.open:
            return False
        if session.in_flight:
            return True
        return bool(session.backlog) and self.may_start(session)

    def utilization(self) -> float:
        """Queue fill fraction (the overload signal clients can poll)."""
        return self.queued / self.max_queue_depth
