"""The Remote DBMS Interface (RDI).

Section 5: "Queries to the remote DBMS are translated from CAQL to the DML
of the remote DBMS by a DBMS specific translator in the Remote DBMS
Interface (RDI).  The RDI interacts with the remote DBMS via a standard
communication protocol, and buffers the data returned by the DBMS prior to
passing buffer control to the Cache Manager."

The RDI owns the CMS's copy of the remote schema (Section 5: the Cache
Manager keeps "(a copy of) the remote database schema") so repeated schema
lookups do not pay communication cost.

It is also the resilience boundary for the workstation–server link: every
remote request runs under a :class:`~repro.remote.faults.RetryPolicy` —
bounded retries with exponential backoff (charged to the ``remote`` clock
track), a per-request timeout metered in simulated remote seconds, and a
circuit breaker that refuses requests locally while the server is failing.
With the default policy on a healthy link none of this machinery fires, so
fault handling is strictly opt-in.
"""

from __future__ import annotations

import random
from typing import Callable, TypeVar

from repro.common.errors import (
    CircuitOpenError,
    RemoteDBMSError,
    RemoteTimeoutError,
    TransientRemoteError,
    UnknownRelationError,
)
from repro.common.metrics import (
    H_REMOTE_TUPLES_PER_REQUEST,
    REMOTE_RETRIES,
    REMOTE_SEMIJOIN_REQUESTS,
    REMOTE_TIMEOUTS,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.statistics import RelationStatistics
from repro.remote.faults import CircuitBreaker, RetryPolicy
from repro.remote.server import RemoteDBMS
from repro.remote.sql import DMLRequest
from repro.caql.psj import PSJQuery
from repro.caql.translate import sql_from_psj

T = TypeVar("T")


def canonical_bindings(
    bindings: dict[str, tuple[object, ...]] | None,
) -> dict[str, tuple[object, ...]]:
    """Deduplicate and canonically order binding sets for the wire.

    Duplicate values are eliminated (shipping them twice would inflate the
    uplink charge for nothing) and the survivors are sorted by
    ``(type name, repr)`` — a total, deterministic order even for mixed
    value types — so same-seed runs ship byte-identical IN-lists.

    Deduplication is by Python equality (what the IN-list check applies),
    but the *representative* of each equality class is chosen canonically:
    values are sorted first, then the earliest of each class wins.  A set
    like ``{1, 1.0}`` collapses either way (``1 == 1.0``), but without the
    pre-sort the survivor would depend on insertion order — and the same
    bindings could ship as ``IN (1)`` on one run and ``IN (1.0)`` on the
    next.
    """
    if not bindings:
        return {}
    out: dict[str, tuple[object, ...]] = {}
    for column in sorted(bindings):
        ordered = sorted(
            bindings[column], key=lambda v: (type(v).__name__, repr(v))
        )
        unique: list[object] = []
        seen: set[object] = set()
        for value in ordered:
            if value in seen:
                continue
            seen.add(value)
            unique.append(value)
        out[column] = tuple(unique)
    return out


class RemoteInterface:
    """Translates PSJ queries to DML, executes them resiliently, rebuilds
    results."""

    def __init__(
        self,
        server: RemoteDBMS,
        buffer_size: int = 64,
        retry: RetryPolicy | None = None,
    ):
        self._server = server
        self._buffer_size = buffer_size
        self._schema_cache: dict[str, Schema] = {}
        self._statistics_cache: dict[str, RelationStatistics] = {}
        self._retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random(self._retry.seed)
        #: The server's tracer, so remote round trips nest in caller spans.
        self.tracer = server.tracer
        self._breaker = CircuitBreaker(
            self._retry.breaker_threshold,
            self._retry.breaker_cooldown,
            lambda: server.clock.now,
            server.metrics,
            probe_after=self._retry.breaker_probe_after,
            tracer=self.tracer,
            name=getattr(server, "name", ""),
        )

    @property
    def breaker(self) -> CircuitBreaker:
        """The link's circuit breaker (observable state for tests/planner)."""
        return self._breaker

    @property
    def retry_policy(self) -> RetryPolicy:
        """The active client-side resilience policy."""
        return self._retry

    def remote_available(self) -> bool:
        """Planner hook: would a remote request be allowed right now?"""
        return self._breaker.would_allow()

    # -- metadata (cached copies) ---------------------------------------------------
    def schema_of(self, table: str) -> Schema:
        """Remote schema, from the local copy after the first round trip."""
        schema = self._schema_cache.get(table)
        if schema is None:
            schema = self._resilient(lambda: self._server.schema_of(table))
            self._schema_cache[table] = schema
        return schema

    def statistics_of(self, table: str) -> RelationStatistics:
        """Remote statistics, cached after the first round trip."""
        statistics = self._statistics_cache.get(table)
        if statistics is None:
            statistics = self._resilient(lambda: self._server.statistics_of(table))
            self._statistics_cache[table] = statistics
        return statistics

    def has_table(self, table: str) -> bool:
        """True when the remote database has ``table``."""
        if table in self._schema_cache:
            return True
        return self._server.has_table(table)

    # -- execution ---------------------------------------------------------------------
    def fetch(
        self,
        psj: PSJQuery,
        bindings: dict[str, tuple[object, ...]] | None = None,
    ) -> Relation:
        """Translate, execute with buffering/pipelining, rebuild the result.

        ``bindings`` maps qualified query columns to binding values — the
        semijoin reduction.  Values are deduplicated and put into one
        canonical order here, so the shipped IN-list (and therefore every
        downstream charge and trace) is deterministic regardless of the
        order the executor extracted them in.

        The buffered stream is drained fully here: remote fetches feed the
        cache, so the whole result is wanted (lazy production only applies
        to cache-resident data, Section 5.1).
        """
        with self.tracer.span("rdi.fetch", view=psj.name) as span:
            in_lists = canonical_bindings(bindings)
            if in_lists:
                self._server.metrics.incr(REMOTE_SEMIJOIN_REQUESTS)
                self.tracer.event(
                    "rdi.semijoin",
                    view=psj.name,
                    columns=sorted(in_lists),
                    values=sum(len(v) for v in in_lists.values()),
                )
            translation = sql_from_psj(psj, self.schema_of, in_lists=in_lists)
            rows, _schema = self._resilient(
                lambda: self._attempt_fetch(translation.query)
            )
            self._server.metrics.observe(H_REMOTE_TUPLES_PER_REQUEST, len(rows))
            span.set("tuples", len(rows))
            if in_lists:
                span.set("semijoin", True)
            return translation.rebuild(rows)

    def fetch_many(self, psjs: list[PSJQuery]) -> list[Relation]:
        """Fetch several independent PSJ queries in **one round trip**.

        The paper's cost model makes every round trip expensive; requests
        that are known together (prefetch companions, generalization
        groups) are shipped as one batch so ``remote_latency`` is paid
        once.  Results come back in request order.  The batch is one
        resilience unit: a failure anywhere retries the whole batch.
        """
        if not psjs:
            return []
        if len(psjs) == 1:
            return [self.fetch(psjs[0])]
        with self.tracer.span("rdi.fetch_batch", count=len(psjs)) as span:
            translations = [sql_from_psj(p, self.schema_of) for p in psjs]
            results = self._resilient(
                lambda: self._attempt_fetch_batch([t.query for t in translations])
            )
            self.tracer.event(
                "rdi.batch",
                count=len(psjs),
                views=[p.name for p in psjs],
                tuples=sum(len(rows) for rows, _schema in results),
            )
            relations: list[Relation] = []
            for translation, (rows, _schema) in zip(translations, results):
                self._server.metrics.observe(H_REMOTE_TUPLES_PER_REQUEST, len(rows))
                relations.append(translation.rebuild(rows))
            span.set("tuples", sum(len(r) for r in relations))
            return relations

    def fetch_base_relation(self, table: str) -> Relation:
        """Fetch one whole base table (prefetch/generalization path)."""
        from repro.remote.sql import FetchTableQuery

        if not self.has_table(table):
            raise UnknownRelationError(table)
        with self.tracer.span("rdi.fetch_table", table=table) as span:
            rows, schema = self._resilient(
                lambda: self._attempt_fetch(FetchTableQuery(table))
            )
            self._server.metrics.observe(H_REMOTE_TUPLES_PER_REQUEST, len(rows))
            span.set("tuples", len(rows))
        # Results are exposed under positional attribute names, matching
        # how PSJ queries address base relations.
        arity = len(schema.attributes)
        positional = Schema(table, tuple(f"a{i}" for i in range(arity)))
        return Relation(positional, rows)

    def fetch_partial(self, psj: PSJQuery) -> Relation | None:
        """Best-effort partial answer when the remote link is failing.

        A single-backend link has no partial story — the one server is the
        server that just failed — so this returns ``None`` and the CMS
        falls through to its archive/cache degradation paths.  The
        federated interface overrides this to answer from surviving
        backends with the missing backends' columns nulled out.
        """
        return None

    def estimate_cost(self, tuples_touched: float, tuples_shipped: float) -> float:
        """Planner hook: simulated seconds a remote request would cost.

        Fractional estimates flow through unchanged — truncating them to
        ints made sub-tuple estimates look free and biased the planner
        toward remote execution for small queries.
        """
        return self._server.network.request_cost(tuples_touched, tuples_shipped)

    # -- resilience ---------------------------------------------------------------------
    def _attempt_fetch(self, request: DMLRequest) -> tuple[list[tuple], Schema]:
        """One attempt: issue the request and drain the stream, metering the
        per-request timeout against remote seconds actually charged."""
        network = self._server.network
        timeout = self._retry.timeout_seconds
        start = network.charged_seconds
        stream = self._server.execute_stream(request, self._buffer_size)
        return self._drain(stream, start, timeout), stream.schema

    def _attempt_fetch_batch(
        self, requests: list[DMLRequest]
    ) -> list[tuple[list[tuple], Schema]]:
        """One attempt at a whole batch: one round trip, every stream
        drained under a shared per-request timeout."""
        network = self._server.network
        timeout = self._retry.timeout_seconds
        start = network.charged_seconds
        streams = self._server.execute_batch(requests, self._buffer_size)
        return [
            (self._drain(stream, start, timeout), stream.schema)
            for stream in streams
        ]

    def _drain(self, stream, start: float, timeout: float | None) -> list[tuple]:
        network = self._server.network
        rows: list[tuple] = []
        while True:
            if timeout is not None and network.charged_seconds - start > timeout:
                raise RemoteTimeoutError(
                    f"remote request exceeded {timeout}s of simulated remote time"
                )
            buffer = stream.next_buffer()
            if not buffer:
                break
            rows.extend(buffer)
        return rows

    def _resilient(self, op: Callable[[], T]) -> T:
        """Run one remote operation under retry/backoff/timeout/breaker."""
        policy = self._retry
        breaker = self._breaker
        tracer = self.tracer
        if not breaker.allow():
            tracer.event("breaker.refused", state=breaker.state)
            raise CircuitOpenError(
                "circuit breaker open: remote DBMS temporarily unavailable"
            )
        metrics = self._server.metrics
        network = self._server.network
        last: RemoteDBMSError | None = None
        for attempt in range(policy.max_retries + 1):
            try:
                value = op()
            except RemoteTimeoutError as error:
                metrics.incr(REMOTE_TIMEOUTS)
                tracer.event("rdi.timeout", attempt=attempt)
                last = error
            except TransientRemoteError as error:
                last = error
            except RemoteDBMSError:
                # Permanent: retrying cannot help, but the breaker still
                # counts it toward tripping open.
                breaker.record_failure()
                raise
            else:
                breaker.record_success()
                return value
            breaker.record_failure()
            if attempt >= policy.max_retries or not breaker.allow():
                break
            metrics.incr(REMOTE_RETRIES)
            wait = policy.backoff(attempt, self._rng)
            tracer.event("rdi.retry", attempt=attempt + 1, backoff_seconds=wait)
            network.charge_backoff(wait)
        assert last is not None
        tracer.event("rdi.gave_up", error=type(last).__name__)
        raise last
