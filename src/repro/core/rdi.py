"""The Remote DBMS Interface (RDI).

Section 5: "Queries to the remote DBMS are translated from CAQL to the DML
of the remote DBMS by a DBMS specific translator in the Remote DBMS
Interface (RDI).  The RDI interacts with the remote DBMS via a standard
communication protocol, and buffers the data returned by the DBMS prior to
passing buffer control to the Cache Manager."

The RDI owns the CMS's copy of the remote schema (Section 5: the Cache
Manager keeps "(a copy of) the remote database schema") so repeated schema
lookups do not pay communication cost.
"""

from __future__ import annotations

from repro.common.errors import UnknownRelationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.statistics import RelationStatistics
from repro.remote.server import RemoteDBMS
from repro.caql.psj import PSJQuery
from repro.caql.translate import sql_from_psj


class RemoteInterface:
    """Translates PSJ queries to DML, executes them, rebuilds results."""

    def __init__(self, server: RemoteDBMS, buffer_size: int = 64):
        self._server = server
        self._buffer_size = buffer_size
        self._schema_cache: dict[str, Schema] = {}
        self._statistics_cache: dict[str, RelationStatistics] = {}

    # -- metadata (cached copies) ---------------------------------------------------
    def schema_of(self, table: str) -> Schema:
        """Remote schema, from the local copy after the first round trip."""
        schema = self._schema_cache.get(table)
        if schema is None:
            schema = self._server.schema_of(table)  # one charged round trip
            self._schema_cache[table] = schema
        return schema

    def statistics_of(self, table: str) -> RelationStatistics:
        """Remote statistics, cached after the first round trip."""
        statistics = self._statistics_cache.get(table)
        if statistics is None:
            statistics = self._server.statistics_of(table)
            self._statistics_cache[table] = statistics
        return statistics

    def has_table(self, table: str) -> bool:
        """True when the remote database has ``table``."""
        if table in self._schema_cache:
            return True
        return self._server.has_table(table)

    # -- execution ---------------------------------------------------------------------
    def fetch(self, psj: PSJQuery) -> Relation:
        """Translate, execute with buffering/pipelining, rebuild the result.

        The buffered stream is drained fully here: remote fetches feed the
        cache, so the whole result is wanted (lazy production only applies
        to cache-resident data, Section 5.1).
        """
        translation = sql_from_psj(psj, self.schema_of)
        stream = self._server.execute_stream(translation.query, self._buffer_size)
        rows: list[tuple] = []
        while True:
            buffer = stream.next_buffer()
            if not buffer:
                break
            rows.extend(buffer)
        return translation.rebuild(rows)

    def fetch_base_relation(self, table: str) -> Relation:
        """Fetch one whole base table (prefetch/generalization path)."""
        from repro.remote.sql import FetchTableQuery

        if not self.has_table(table):
            raise UnknownRelationError(table)
        stream = self._server.execute_stream(FetchTableQuery(table), self._buffer_size)
        rows: list[tuple] = []
        while True:
            buffer = stream.next_buffer()
            if not buffer:
                break
            rows.extend(buffer)
        # Results are exposed under positional attribute names, matching
        # how PSJ queries address base relations.
        arity = len(stream.schema.attributes)
        schema = Schema(table, tuple(f"a{i}" for i in range(arity)))
        return Relation(schema, rows)

    def estimate_cost(self, tuples_touched: float, tuples_shipped: float) -> float:
        """Planner hook: simulated seconds a remote request would cost."""
        return self._server.network.request_cost(
            int(tuples_touched), int(tuples_shipped)
        )
