"""The paper's primary contribution: the Cache Management System (CMS)."""

from repro.core.advice_manager import AdviceManager
from repro.core.cache import Cache, CacheElement, lru_scorer
from repro.core.cache_model import CACHE_MODEL_SCHEMA, cache_model, cache_statistics
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.core.executor import ExecutionMonitor, ResultStream
from repro.core.plan import CachePart, QueryPlan, RemotePart
from repro.core.planner import PlannerFeatures, QueryPlanner
from repro.core.rdi import RemoteInterface
from repro.core.subsumption import (
    SubsumptionMatch,
    derive_full,
    derive_full_lazy,
    derive_part,
    find_relevant,
    match_element,
)

__all__ = [
    "AdviceManager",
    "CACHE_MODEL_SCHEMA",
    "Cache",
    "CacheElement",
    "CacheManagementSystem",
    "CachePart",
    "CMSFeatures",
    "ExecutionMonitor",
    "PlannerFeatures",
    "QueryPlan",
    "QueryPlanner",
    "RemoteInterface",
    "RemotePart",
    "ResultStream",
    "SubsumptionMatch",
    "cache_model",
    "cache_statistics",
    "derive_full",
    "derive_full_lazy",
    "derive_part",
    "find_relevant",
    "lru_scorer",
    "match_element",
]
