"""The cache model: meta-information about the cache, as a relation.

Section 5.3.2: "The cache model contains information on the cache
elements.  It is a relation of type (E_id_i, E_def_i, ....)".  Section 3:
"the IE can access cache model information from the CMS" — so the model is
exposed as an ordinary relation the IE (or anything else) can query.
"""

from __future__ import annotations

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.core.cache import Cache

CACHE_MODEL_SCHEMA = Schema(
    "cache_model",
    (
        "e_id",        # element identifier
        "e_def",       # definition (rendered PSJ expression)
        "view",        # the view name the definition came from
        "kind",        # "extension" | "generator"
        "rows",        # rows materialized so far
        "bytes",       # estimated size
        "use_count",   # touches since creation
        "uses",        # comma-joined named uses (Section 5.2)
        "pinned",      # 1 when exempt from replacement
        "pin_count",   # active in-flight references
        "epoch",       # cache epoch at which the element was stored
    ),
)


def cache_model(cache: Cache) -> Relation:
    """A point-in-time snapshot of the cache model relation."""
    rows = []
    for element in cache.elements():
        rows.append(
            (
                element.element_id,
                str(element.definition),
                element.view_name,
                "generator" if element.is_generator else "extension",
                element.rows_materialized(),
                element.estimated_bytes(),
                element.use_count,
                ",".join(sorted(element.uses)),
                1 if element.pinned else 0,
                element.pin_count,
                element.epoch,
            )
        )
    return Relation(CACHE_MODEL_SCHEMA, rows)


def cache_statistics(cache: Cache) -> dict[str, float]:
    """Aggregate statistics about the cache (performance meta-data)."""
    elements = cache.elements()
    return {
        "elements": len(elements),
        "generators": sum(1 for e in elements if e.is_generator),
        "extensions": sum(1 for e in elements if not e.is_generator),
        "used_bytes": cache.used_bytes(),
        "capacity_bytes": cache.capacity_bytes,
        "fill_fraction": cache.used_bytes() / cache.capacity_bytes,
        "evictions": cache.eviction_count,
        "total_rows": sum(e.rows_materialized() for e in elements),
    }
