"""Structured EXPLAIN for the CMS: plan + subsumption rationale, no execution.

``cms.explain(query)`` answers the two questions a user of the bridge
keeps asking: *what would the CMS do with this query*, and *why did (or
didn't) the cache help* — without fetching anything, charging any
simulated time beyond planning, storing any result, or perturbing the
advice session's usage statistics.

The planner itself is side-effect free (it reads the cache, the advice,
and cached statistics), so explanation is simply: normalize the query the
same way :meth:`~repro.core.cms.CacheManagementSystem.query` would, plan
it, and replay the subsumption probe with rejection recording
(:func:`~repro.core.subsumption.explain_candidates`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlanningError
from repro.caql.ast import (
    AggregateQuery,
    CAQLQuery,
    ConjunctiveQuery,
    QuantifiedQuery,
    SetOfQuery,
)
from repro.caql.eval import core_plan
from repro.caql.psj import psj_from_literals
from repro.core.plan import CachePart
from repro.core.subsumption import CandidateReport, explain_candidates


@dataclass(frozen=True)
class PlanExplanation:
    """Everything the planner decided for one query, and why."""

    query_name: str
    strategy: str
    lazy: bool
    cache_result: bool
    expendable: bool
    #: Planner decision notes, verbatim.
    notes: tuple[str, ...]
    #: One line per plan part: ``cache:E3`` or ``remote:view__rest``.
    parts: tuple[str, ...]
    #: Generalized queries the plan would fetch first.
    prefetches: tuple[str, ...]
    estimated_local_cost: float
    estimated_remote_cost: float
    #: Subsumption rationale, one report per candidate cache element.
    candidates: tuple[CandidateReport, ...]
    #: Cache epoch the plan was computed against.
    epoch: int
    #: Efficacy ledger rows (:meth:`~repro.core.cache.Cache.element_report`)
    #: for every cache element the plan would read, in plan-part order.
    element_efficacy: tuple[dict, ...] = ()

    @property
    def served_from_cache(self) -> bool:
        """True when no remote request would be issued."""
        return self.strategy in ("exact", "cache-full", "unit", "unsatisfiable")

    def to_dict(self) -> dict:
        """A JSON-friendly form (for reports and structured logging)."""
        return {
            "query": self.query_name,
            "strategy": self.strategy,
            "lazy": self.lazy,
            "cache_result": self.cache_result,
            "expendable": self.expendable,
            "notes": list(self.notes),
            "parts": list(self.parts),
            "prefetches": list(self.prefetches),
            "estimated_local_cost": self.estimated_local_cost,
            "estimated_remote_cost": self.estimated_remote_cost,
            "epoch": self.epoch,
            "element_efficacy": [dict(row) for row in self.element_efficacy],
            "candidates": [
                {
                    "element": report.element_id,
                    "view": report.view_name,
                    "matched": report.matched,
                    "matches": [str(m) for m in report.matches],
                    "rejections": list(report.rejections),
                }
                for report in self.candidates
            ],
        }

    def lines(self) -> list[str]:
        """A human-readable rendering, one line per list entry."""
        out = [
            f"query {self.query_name}: strategy={self.strategy}"
            f" lazy={self.lazy} cache_result={self.cache_result}"
        ]
        for part in self.parts:
            out.append(f"  part {part}")
        for prefetch in self.prefetches:
            out.append(f"  prefetch {prefetch}")
        for note in self.notes:
            out.append(f"  note: {note}")
        for row in self.element_efficacy:
            line = (
                f"  efficacy {row['element']} ({row['view']}): "
                f"hits={row['hits']} saved={row['saved_seconds']:.3f}s "
                f"derivation={row['derivation_seconds']:.3f}s "
                f"age={row['age_seconds']:.3f}s"
            )
            if row.get("kind") == "intermediate":
                line += f" kind=intermediate op={row.get('operator') or '?'}"
            out.append(line)
            if row.get("parents"):
                out.append(
                    f"    lineage: depth={row.get('depth', 0)} "
                    f"parents={','.join(row['parents'])}"
                )
        if not self.candidates:
            out.append("  subsumption: no candidate cache elements")
        for report in self.candidates:
            if report.matched:
                out.append(
                    f"  candidate {report.element_id} ({report.view_name}): "
                    f"matched via {report.matches[0]}"
                )
            else:
                out.append(
                    f"  candidate {report.element_id} ({report.view_name}): rejected"
                )
                for reason in report.rejections:
                    out.append(f"    - {reason}")
        return out

    def render(self) -> str:
        return "\n".join(self.lines())


def explain_query(cms, q: CAQLQuery) -> PlanExplanation:
    """Build a :class:`PlanExplanation` for ``q`` against ``cms``.

    Aggregates, set-of, and quantified queries are explained through their
    base conjunctive query (that is the part the cache can serve).
    """
    while isinstance(q, (AggregateQuery, SetOfQuery, QuantifiedQuery)):
        q = q.base
    if not isinstance(q, ConjunctiveQuery):
        raise PlanningError(f"not a CAQL query: {q!r}")

    psj, _core_vars, evaluable = core_plan(q, cms.builtins)
    if not evaluable:
        psj = psj_from_literals(
            q.name, q.relation_literals(), q.comparison_literals(), q.answers
        )

    plan = cms.planner.plan(psj)
    if cms.features.caching and cms.features.subsumption:
        candidates = tuple(explain_candidates(cms.cache, psj))
    else:
        candidates = ()

    parts = tuple(
        f"cache:{p.match.element.element_id}"
        if isinstance(p, CachePart)
        else f"remote:{p.sub_query.name}"
        + ("+semijoin" if p.bind_columns else "")
        for p in plan.parts
    )
    if plan.full_match is not None:
        parts = (f"cache:{plan.full_match.element.element_id}",) + parts

    plan_elements = list(plan.cache_elements())
    if plan.strategy == "exact" and not plan_elements:
        # An exact plan carries no match (the executor re-probes); resolve
        # the element the same way it will.
        exact = cms.cache.lookup_exact(psj)
        if exact is not None:
            plan_elements.append(exact)
    seen_ids: set[str] = set()
    efficacy = []
    for element in plan_elements:
        if element.element_id in seen_ids:
            continue
        seen_ids.add(element.element_id)
        efficacy.append(cms.cache.element_report(element))

    return PlanExplanation(
        query_name=psj.name,
        strategy=plan.strategy,
        lazy=plan.lazy,
        cache_result=plan.cache_result,
        expendable=plan.expendable,
        notes=tuple(plan.notes),
        parts=parts,
        prefetches=tuple(p.name for p in plan.prefetches),
        estimated_local_cost=plan.estimated_local_cost,
        estimated_remote_cost=plan.estimated_remote_cost,
        candidates=candidates,
        epoch=plan.epoch,
        element_efficacy=tuple(efficacy),
    )
