"""The Advice Manager.

Section 5: "The Advice Manager interacts with the QPO to assist in query
planning and optimization and with the Cache Manager to assist in caching
and replacement decisions."

It holds the session's advice, tracks the path expression as queries
arrive, and answers the decision questions of Section 4.2:

* *prefetching*: which views to fetch ahead (sequence companions that the
  tracker still expects);
* *result caching*: whether a view's result is worth keeping (predicted to
  recur, or unknown);
* *replacement*: an advice-modified LRU score (elements the tracker says
  are needed soon are protected; unreachable ones are evicted first);
* *attribute indexing*: consumer-annotated positions;
* *lazy vs eager*: pure-producer views evaluate lazily;
* *generalization*: views queried repeatedly with different constants
  (a repetition group in the path expression) are worth generalizing.
"""

from __future__ import annotations

from repro.advice.language import EMPTY_ADVICE, AdviceSet
from repro.advice.path_expression import (
    Alternation,
    PathExpr,
    QueryPattern,
    sequence_companions,
)
from repro.advice.tracker import PathTracker
from repro.advice.view_spec import ViewSpecification
from repro.core.cache import CacheElement, lru_scorer


def _views_under_repetition(expr: PathExpr) -> set[str]:
    """View names inside a sequence that may iterate more than once."""
    out: set[str] = set()

    def walk(node: PathExpr, repeating: bool) -> None:
        if isinstance(node, QueryPattern):
            if repeating:
                out.add(node.view)
            return
        if isinstance(node, Alternation):
            for member in node.members:
                walk(member, repeating)
            return
        node_repeats = repeating or node.upper is None or not isinstance(node.upper, int) or node.upper > 1
        for element in node.elements:
            walk(element, node_repeats)

    walk(expr, False)
    return out


class AdviceManager:
    """Session-scoped advice state and decision logic."""

    def __init__(self) -> None:
        self.advice: AdviceSet = EMPTY_ADVICE
        self.tracker: PathTracker | None = None
        self._repeating_views: set[str] = set()

    # -- session lifecycle -------------------------------------------------------
    def begin_session(self, advice: AdviceSet | None) -> None:
        """Install a session's advice and start path tracking."""
        self.advice = advice if advice is not None else EMPTY_ADVICE
        if self.advice.path_expression is not None:
            self.tracker = PathTracker(self.advice.path_expression)
            self._repeating_views = _views_under_repetition(self.advice.path_expression)
        else:
            self.tracker = None
            self._repeating_views = set()

    @property
    def has_advice(self) -> bool:
        """True when the session carries any advice."""
        return not self.advice.is_empty()

    def view(self, name: str) -> ViewSpecification | None:
        """The advised view specification named ``name``, or None."""
        return self.advice.view(name)

    # -- per-query tracking ----------------------------------------------------------
    def observe_query(self, view_name: str) -> None:
        """Advance the path tracker on one incoming query."""
        if self.tracker is not None:
            self.tracker.observe(view_name)

    def prefetch_candidates(self, view_name: str) -> list[str]:
        """Views to fetch ahead once ``view_name`` has been requested.

        Section 5.3.1: sequence grouping means the group's other items are
        "likely to be evaluated when the first item is evaluated" — but
        only those the tracker has not already seen satisfied and that are
        still reachable.
        """
        if self.advice.path_expression is None:
            return []
        companions = sequence_companions(self.advice.path_expression, view_name)
        if self.tracker is not None and not self.tracker.lost:
            companions = {
                name
                for name in companions
                if self.tracker.distance_to(name) is not None
            }
        return sorted(companions)

    # -- decisions ---------------------------------------------------------------------
    def should_cache_result(self, view_name: str) -> bool:
        """Cache unless advice positively says the view won't recur.

        A pure-producer view with no other predicted request "may also
        [not be cached] if there are no other predicted requests for it"
        (Section 4.2.1).
        """
        view = self.view(view_name)
        if view is None:
            return True
        if not view.is_pure_producer():
            return True
        if self.tracker is None or self.tracker.lost:
            return True
        return self.tracker.distance_to(view_name) is not None

    def index_positions(self, view_name: str) -> tuple[int, ...]:
        """Answer positions worth indexing (consumer annotations)."""
        view = self.view(view_name)
        if view is None:
            return ()
        return view.consumer_positions()

    def prefers_lazy(self, view_name: str) -> bool:
        """Section 5.3.3: ``d(X^, Y^)`` → evaluate lazily if cached."""
        view = self.view(view_name)
        return view is not None and view.is_pure_producer()

    def should_generalize(self, view_name: str) -> bool:
        """Generalize when the view is predicted to recur with varying
        constants: it sits under a repetition and has consumer positions."""
        view = self.view(view_name)
        if view is None or not view.consumer_positions():
            return False
        return view_name in self._repeating_views

    # -- replacement -------------------------------------------------------------------
    def replacement_scorer(self, base_scorer=None):
        """An eviction scorer: a base scorer modified by path-expression
        distance.

        Elements whose view the tracker will never request again are
        evicted first; elements needed within a few queries are protected.
        Falls back to the plain base without a (live) tracker.
        ``base_scorer`` defaults to LRU; the CMS passes the cache's
        cost-based scorer so advice offsets layer on top of value.
        """
        tracker = self.tracker
        if base_scorer is None:
            base_scorer = lru_scorer

        def scorer(element: CacheElement) -> float:
            base = base_scorer(element)
            if element.expendable:
                base += 1e9  # advice marked it single-use
            if element.kind == "intermediate":
                # Path expressions name whole views; distance is undefined
                # for an operator-level intermediate, which would otherwise
                # always look "never needed again" and be dumped first.
                return base
            if tracker is None or tracker.lost:
                return base
            distance = tracker.distance_to(element.view_name)
            if distance is None:
                return base + 1e12  # never needed again: evict first
            # Needed soon: strong protection, decaying with distance.
            return base - 1e12 / distance

        return scorer
