"""Subsumption between cache elements and CAQL queries (Section 5.3.2).

Given a query Q in PSJ form, find cache elements E such that E ⊇ Q_c for a
component Q_c of Q ("there exists an E_i ⊇ Q_c, where ⊇ stands for
'subsumes' or 'can be used to derive'"), together with the *remainder
operations* (selection + projection) that derive Q_c's contribution from
E's stored rows.

The algorithm follows the paper's two steps, strengthened with the
range-condition implication engine:

1. **Candidate filtering** through the ``(predicate name, cache element)``
   index, with one-directional matching: every occurrence in E's
   definition must map (injectively, same predicate and arity) onto an
   occurrence of Q.
2. **Condition checking**: under that occurrence mapping, every condition
   of E must be implied by Q's conditions (E is no more restrictive than
   Q), and every condition of Q over the covered occurrences must be
   either implied by E's conditions or re-applicable on E's projection.

Soundness argument for a produced match: E's stored rows are exactly the
projection of all tuples satisfying E's conditions.  Since Q's conditions
imply E's (under the mapping), every tuple combination satisfying Q over
the covered occurrences appears in E; re-applying Q's non-implied covered
conditions (all of whose columns survive E's projection — checked) then
yields exactly the covered component of Q.

Subsumption is the cache's *second* lookup tier: variant spellings of a
cached definition (conjuncts reordered, variables renamed, bounds
respelled) are recognized up front by :mod:`repro.core.canonical` and
served as canonical-key exact hits without entering the search here.
What reaches this module is genuine containment — a strictly more
specific query derivable from a strictly more general element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.relational.expressions import Comparison
from repro.relational.generator import GeneratorRelation
from repro.relational.operators import select, select_iter
from repro.relational.relation import Relation
from repro.caql.eval import result_schema
from repro.caql.implication import ConditionSet
from repro.caql.psj import ConstProj, PSJQuery, column, parse_column
from repro.core.cache import Cache, CacheElement


@dataclass(frozen=True)
class SubsumptionMatch:
    """A usable derivation of (part of) a query from one cache element."""

    element: CacheElement
    #: element occurrence tag -> query occurrence tag.
    tag_mapping: tuple[tuple[str, str], ...]
    #: Query occurrence tags covered by this element.
    covered_tags: frozenset[str]
    #: query column -> attribute name in the element's stored relation.
    column_map: tuple[tuple[str, str], ...]
    #: Query conditions to re-apply, rewritten over the element's attributes.
    residual_conditions: tuple[Comparison, ...]
    #: True when the element covers every occurrence of the query.
    is_full: bool
    #: For full matches: the query's projection over element attributes.
    projection: tuple[object, ...] | None = None

    @property
    def exact(self) -> bool:
        """True when no remainder work is needed beyond projection."""
        return self.is_full and not self.residual_conditions

    def available(self) -> dict[str, str]:
        """query column -> element attribute, as a dict."""
        return dict(self.column_map)

    def __str__(self) -> str:
        kind = "full" if self.is_full else f"partial({len(self.covered_tags)} occ)"
        return f"{self.element.element_id} ⊇ query [{kind}, {len(self.residual_conditions)} residual]"


def _rename_condition(condition: Comparison, tag_map: dict[str, str]) -> Comparison:
    """Map a condition from element column space into query column space."""

    def rename(name: str) -> str:
        tag, position = parse_column(name)
        return column(tag_map[tag], position)

    mapping = {}
    for col in condition.columns():
        mapping[col] = rename(col)
    return condition.rename_columns(mapping)


def _assignments(
    element_def: PSJQuery, query: PSJQuery
) -> Iterator[dict[str, str]]:
    """All injective mappings of element occurrences onto query occurrences
    with matching predicate and arity."""
    q_by_signature: dict[tuple[str, int], list[str]] = {}
    for occ in query.occurrences:
        q_by_signature.setdefault((occ.pred, occ.arity), []).append(occ.tag)

    e_occurrences = list(element_def.occurrences)

    def backtrack(index: int, used: set[str], acc: dict[str, str]) -> Iterator[dict[str, str]]:
        if index == len(e_occurrences):
            yield dict(acc)
            return
        occ = e_occurrences[index]
        for q_tag in q_by_signature.get((occ.pred, occ.arity), ()):
            if q_tag in used:
                continue
            used.add(q_tag)
            acc[occ.tag] = q_tag
            yield from backtrack(index + 1, used, acc)
            used.discard(q_tag)
            del acc[occ.tag]

    yield from backtrack(0, set(), {})


def match_element(
    element: CacheElement,
    query: PSJQuery,
    reasons: list[str] | None = None,
) -> Iterator[SubsumptionMatch]:
    """All ways ``element`` can derive a component of ``query``.

    When ``reasons`` is given, every *failed* candidate mapping appends a
    human-readable rejection reason to it — the raw material for
    ``explain``-style subsumption rationale.  The match search itself is
    unchanged (and pays nothing) when ``reasons`` is None.
    """
    element_def = element.definition
    if not element_def.occurrences:
        if reasons is not None:
            reasons.append("element definition has no relation occurrences")
        return
    query_conditions = ConditionSet(query.conditions)

    found_assignment = False
    for tag_map in _assignments(element_def, query):
        found_assignment = True
        mapping_text = (
            ", ".join(f"{e}->{q}" for e, q in sorted(tag_map.items()))
            if reasons is not None
            else ""
        )
        renamed = [_rename_condition(c, tag_map) for c in element_def.conditions]
        not_implied = [c for c in renamed if not query_conditions.implies(c)]
        if not_implied:
            if reasons is not None:
                reasons.append(
                    f"[{mapping_text}] element condition {not_implied[0]} is not "
                    "implied by the query (the element is more restrictive)"
                )
            continue

        covered = frozenset(tag_map.values())
        element_guarantees = ConditionSet(renamed)

        # Availability: which query columns survive the element's projection.
        available: dict[str, str] = {}
        for index, entry in enumerate(element_def.projection):
            if isinstance(entry, ConstProj):
                continue
            tag, position = parse_column(entry)
            q_col = column(tag_map[tag], position)
            available.setdefault(q_col, f"a{index}")

        covered_prefixes = tuple(tag + "." for tag in covered)

        def is_covered_col(name: str) -> bool:
            return name.startswith(covered_prefixes)

        # Classify query conditions over the covered occurrences.
        residual: list[Comparison] = []
        feasible = True
        for condition in query.conditions:
            cols = condition.columns()
            if not cols:
                continue
            inside = [c for c in cols if is_covered_col(c)]
            if not inside:
                continue  # entirely about uncovered occurrences
            if len(inside) == len(cols):
                # Entirely covered: skip if the element guarantees it,
                # else re-apply (requires availability).
                if element_guarantees.implies(condition):
                    continue
                if not all(c in available for c in cols):
                    feasible = False
                    if reasons is not None:
                        reasons.append(
                            f"[{mapping_text}] query condition {condition} must be "
                            "re-applied but its columns were projected away by "
                            "the element"
                        )
                    break
                residual.append(
                    condition.rename_columns({c: available[c] for c in cols})
                )
            else:
                # Crosses the boundary: the covered side must be available
                # for the later join against uncovered parts.
                if not all(c in available for c in inside):
                    feasible = False
                    if reasons is not None:
                        reasons.append(
                            f"[{mapping_text}] join condition {condition} crosses "
                            "the coverage boundary and its covered columns were "
                            "projected away by the element"
                        )
                    break
        if not feasible:
            continue

        # Projection needs over covered occurrences must be available.
        is_full = covered == {occ.tag for occ in query.occurrences}
        projection: list[object] | None = [] if is_full else None
        for entry in query.projection:
            if isinstance(entry, ConstProj):
                if is_full:
                    projection.append(entry)
                continue
            if is_covered_col(entry):
                if entry not in available:
                    feasible = False
                    if reasons is not None:
                        reasons.append(
                            f"[{mapping_text}] the query projects {entry} but "
                            "the element projected that column away"
                        )
                    break
                if is_full:
                    projection.append(available[entry])
            elif is_full:  # pragma: no cover - full covers everything
                feasible = False
                break
        if not feasible:
            continue

        yield SubsumptionMatch(
            element=element,
            tag_mapping=tuple(sorted(tag_map.items())),
            covered_tags=covered,
            column_map=tuple(sorted(available.items())),
            residual_conditions=tuple(residual),
            is_full=is_full,
            projection=tuple(projection) if projection is not None else None,
        )

    if not found_assignment and reasons is not None:
        reasons.append(
            "no injective occurrence mapping: some element occurrence has no "
            "query occurrence with the same predicate and arity"
        )


def find_relevant(cache: Cache, query: PSJQuery) -> list[SubsumptionMatch]:
    """All subsumption matches from the cache for ``query``.

    This is the set of relevant elements R(E_i) of Q (Section 5.3.2); the
    planner chooses among them.  Candidates are prefiltered through the
    cache's predicate index, full matches first, larger coverage first.
    """
    query_preds = set(query.predicates())
    seen: set[str] = set()
    matches: list[SubsumptionMatch] = []
    # Walk predicates in query order, not set order: the sort below is
    # stable, so ties between matches keep visit order, and visit order
    # must not depend on per-process string hashing.
    for pred in dict.fromkeys(query.predicates()):
        for element in cache.elements_for_predicate(pred):
            if element.element_id in seen:
                continue
            seen.add(element.element_id)
            # Quick reject: every element predicate must appear in the query.
            if not set(element.definition.predicates()) <= query_preds:
                continue
            matches.extend(match_element(element, query))
    matches.sort(key=lambda m: (not m.is_full, -len(m.covered_tags), len(m.residual_conditions)))
    return matches


@dataclass(frozen=True)
class CandidateReport:
    """Why one cache element did (or did not) subsume part of a query."""

    element_id: str
    view_name: str
    matches: tuple[SubsumptionMatch, ...]
    #: Rejection reasons, one per failed candidate occurrence mapping.
    rejections: tuple[str, ...]

    @property
    def matched(self) -> bool:
        return bool(self.matches)


def explain_candidates(cache: Cache, query: PSJQuery) -> list[CandidateReport]:
    """The subsumption probe with its working shown.

    Walks the same predicate-index candidate set as :func:`find_relevant`
    but records, for every candidate element, either its matches or the
    reason each occurrence mapping was rejected.  This is the rationale
    behind ``cms.explain`` and the planner's subsumption trace events; the
    plain query path keeps using :func:`find_relevant`, which pays none of
    this bookkeeping.
    """
    query_preds = set(query.predicates())
    seen: set[str] = set()
    reports: list[CandidateReport] = []
    for pred in sorted(query_preds):
        for element in cache.elements_for_predicate(pred):
            if element.element_id in seen:
                continue
            seen.add(element.element_id)
            extra = set(element.definition.predicates()) - query_preds
            if extra:
                reports.append(
                    CandidateReport(
                        element_id=element.element_id,
                        view_name=element.definition.name,
                        matches=(),
                        rejections=(
                            "element mentions predicate(s) absent from the "
                            f"query: {', '.join(sorted(extra))}",
                        ),
                    )
                )
                continue
            reasons: list[str] = []
            matches = tuple(match_element(element, query, reasons=reasons))
            reports.append(
                CandidateReport(
                    element_id=element.element_id,
                    view_name=element.definition.name,
                    matches=matches,
                    rejections=tuple(reasons),
                )
            )
    reports.sort(key=lambda r: (not r.matched, r.element_id))
    return reports


# ---------------------------------------------------------------------------
# remainder derivation
# ---------------------------------------------------------------------------


def derive_full(
    match: SubsumptionMatch, query: PSJQuery, prefiltered: Relation | None = None
) -> Relation:
    """Eagerly derive the whole query result from a full match.

    ``prefiltered`` lets the caller supply element rows already restricted
    by the residual conditions (the index fast path); otherwise the
    residual selection runs here.
    """
    if not match.is_full or match.projection is None:
        raise ValueError("derive_full requires a full match")
    if prefiltered is not None:
        source = filtered = prefiltered
    else:
        source = match.element.extension()
        filtered = (
            select(source, list(match.residual_conditions))
            if match.residual_conditions
            else source
        )
    schema = result_schema(query.name, query.arity)
    rows = (
        tuple(
            entry.value if isinstance(entry, ConstProj) else row[source.schema.position(entry)]
            for entry in match.projection
        )
        for row in filtered
    )
    if not match.projection:
        return Relation(schema, [(True,)] if len(filtered) else [])
    return Relation(schema, rows)


def derive_full_lazy(match: SubsumptionMatch, query: PSJQuery) -> GeneratorRelation:
    """Lazily derive the whole query result from a full match.

    Legal because all required data is already in the cache — the paper's
    precondition for lazy evaluation.
    """
    if not match.is_full or match.projection is None:
        raise ValueError("derive_full_lazy requires a full match")
    schema = result_schema(query.name, query.arity)

    def source() -> Iterator[tuple]:
        stored = match.element.relation  # may itself be a generator
        stored_schema = (
            stored.schema if isinstance(stored, GeneratorRelation) else stored.schema
        )
        rows: Iterator[tuple] = iter(stored)
        if match.residual_conditions:
            rows = select_iter(rows, stored_schema, list(match.residual_conditions))
        if not match.projection:
            for _row in rows:
                yield (True,)
                return
            return
        positions = [
            ("const", entry.value)
            if isinstance(entry, ConstProj)
            else ("col", stored_schema.position(entry))
            for entry in match.projection
        ]
        for row in rows:
            yield tuple(
                value if kind == "const" else row[value] for kind, value in positions
            )

    return GeneratorRelation(schema, source)


def derive_part(match: SubsumptionMatch, needed_columns: list[str]) -> Relation:
    """Derive a partial match's contribution as a relation whose attributes
    are the *query* column names in ``needed_columns`` (all of which must
    be available from the element)."""
    available = match.available()
    missing = [c for c in needed_columns if c not in available]
    if missing:
        raise ValueError(f"columns not available from {match.element.element_id}: {missing}")
    source = match.element.extension()
    filtered = (
        select(source, list(match.residual_conditions))
        if match.residual_conditions
        else source
    )
    from repro.relational.schema import Schema

    if not needed_columns:
        # Pure existence contribution: one boolean column.
        schema = Schema(match.element.element_id, (f"_exists_{match.element.element_id}",))
        return Relation(schema, [(True,)] if len(filtered) else [])
    schema = Schema(match.element.element_id, tuple(needed_columns))
    positions = [source.schema.position(available[c]) for c in needed_columns]
    return Relation(schema, (tuple(row[i] for i in positions) for row in filtered))
