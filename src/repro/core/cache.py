"""The cache: elements, storage, uses, and replacement.

Section 5.4: the Cache Manager is responsible for "(a) maintaining the
cache as well as storing and replacing cache elements (using an LRU scheme
which may be modified due to advi[c]e); (b) executing queries on cached
data ...; (c) keeping track of resources consumed by the cached data; and
(d) maintaining sufficient historical meta-data to support cache
replacement and accumulate performance measurement statistics."

A **cache element** is "a relation defined by a CAQL expression" (held here
in PSJ form) stored either as an extension or as a generator (Section 5.1).
Elements may serve several named **uses** (Section 5.2's co-existing,
alternative representations): each use may want different indexes, and the
CMS decides whether one stored instance can serve them all.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import CacheCapacityError, CacheError
from repro.common.metrics import (
    CACHE_EVICTIONS,
    CACHE_INTERMEDIATE_HITS,
    CACHE_INTERMEDIATE_STORES,
    CACHE_PIN_DEFERRALS,
    CACHE_SAVED_SECONDS,
    H_EVICTED_ELEMENT_BYTES,
    Metrics,
)
from repro.relational.generator import GeneratorRelation
from repro.relational.index import IndexSet
from repro.relational.relation import Relation
from repro.caql.psj import PSJQuery
from repro.core.canonical import canonical_key

#: Scores an element's eviction priority; higher = evict sooner.
EvictionScorer = Callable[["CacheElement"], float]

#: Half-life, in simulated seconds, of the observed-reuse signal: an
#: element's hit frequency halves for every such interval it sits idle.
REUSE_HALF_LIFE = 30.0
#: Scale of the cost-based value term relative to the LRU sequence.  Large
#: enough that any nonzero value dominates recency deltas, small enough to
#: stay below the advice manager's 1e12 path-expression offsets (advice
#: "needed next" / "never needed" verdicts still override cost).
VALUE_WEIGHT = 1e9
#: Fraction of a reuse event credited to each derivation-ancestor level:
#: a hit on a derived element warms its parents at this share, its
#: grandparents at the share squared, and so on (see ``touch``).
ANCESTOR_SHARE = 0.5


@dataclass
class CacheElement:
    """One cached view: a PSJ definition plus its stored representation."""

    element_id: str
    definition: PSJQuery
    relation: Relation | GeneratorRelation
    sequence: int = 0  # LRU clock value of the last touch
    use_count: int = 0
    uses: set[str] = field(default_factory=set)
    #: Active pins (in-flight uses); a pinned element is exempt from
    #: eviction and its reclamation is deferred until the last unpin.
    pin_count: int = 0
    #: Cache epoch at which this element was stored (staleness tag).
    epoch: int = 0
    #: Logically discarded while pinned: invisible to lookups, reclaimed
    #: for real when the last pin is released.
    condemned: bool = False
    #: Advice predicted no further use: first in line for eviction.
    expendable: bool = False
    # -- efficacy ledger (per-element lifetime accounting) ---------------
    #: Simulated time this element was stored / last touched at.
    created_at: float = 0.0
    last_used_at: float = 0.0
    #: Simulated seconds it cost to derive this element (remote fetches,
    #: local derivation) — the price a reuse avoids re-paying.
    derivation_seconds: float = 0.0
    #: Accumulated derivation seconds reuse has saved so far.
    saved_seconds: float = 0.0
    #: What the advice predicted at store time: True = reuse expected,
    #: False = expendable (no reuse expected), None = advice was silent.
    advice_expected_reuse: bool | None = None
    # -- derivation lineage (operator-level intermediates) ----------------
    #: "view" for advised views / whole query results; "intermediate" for
    #: operator-level results registered during execution (remote parts,
    #: select-project subsets, semijoin-reduced fetches, gather parts).
    kind: str = "view"
    #: Element ids of the inputs this element was derived from (empty for
    #: base fetches).  Lineage is advisory metadata: a parent may be
    #: evicted before its children — the child's stored relation is
    #: self-contained — but never while a descendant is pinned.
    parents: tuple[str, ...] = ()
    #: The operator that produced this element ("remote-fetch",
    #: "select-project", "semijoin-fetch", "federated-gather", "" = view).
    operator: str = ""
    #: Longest parent chain below this element (0 for roots).
    depth: int = 0
    #: Exponentially decayed observed hit frequency (the reuse predictor's
    #: measured half; see ``Cache.cost_scorer``).
    reuse_frequency: float = 0.0
    #: Advice half of the reuse predictor: 1.0 neutral, raised when advice
    #: expects reuse, zeroed for expendable elements.
    advice_weight: float = 1.0
    _indexes: IndexSet | None = field(default=None, repr=False)
    _sorted_views: dict | None = field(default=None, repr=False)

    @property
    def pinned(self) -> bool:
        """True while at least one in-flight use holds a pin."""
        return self.pin_count > 0

    @pinned.setter
    def pinned(self, value: bool) -> None:
        # Back-compat boolean view over the reference count: True pins the
        # element (once), False force-releases every pin.
        if value:
            self.pin_count = max(1, self.pin_count)
        else:
            self.pin_count = 0

    @property
    def is_generator(self) -> bool:
        """True when stored in generator (lazy) form."""
        return isinstance(self.relation, GeneratorRelation)

    @property
    def view_name(self) -> str:
        """The view this element was defined from (advice linkage)."""
        return self.definition.name

    def extension(self) -> Relation:
        """The element as an extension (draining a generator if needed)."""
        if isinstance(self.relation, GeneratorRelation):
            return self.relation.to_extension()
        return self.relation

    def rows_materialized(self) -> int:
        """Rows computed so far (all of them for an extension)."""
        if isinstance(self.relation, GeneratorRelation):
            return self.relation.produced_count
        return len(self.relation)

    def estimated_bytes(self) -> int:
        """Size estimate for capacity accounting."""
        if isinstance(self.relation, GeneratorRelation):
            return self.relation._memo.estimated_bytes() + 64
        return self.relation.estimated_bytes() + 64

    # -- indexing ---------------------------------------------------------------
    def indexes(self) -> IndexSet:
        """The element's index set (promotes a generator to an extension:
        indexing requires the full extension)."""
        extension = self.extension()
        if self._indexes is None:
            self._indexes = IndexSet(extension)
        return self._indexes

    def has_index_on(self, attributes: tuple[str, ...]) -> bool:
        """True when an index on exactly these attributes exists."""
        return self._indexes is not None and self._indexes.get(attributes) is not None

    def promote(self) -> Relation:
        """Convert a generator element to its extension in place."""
        if isinstance(self.relation, GeneratorRelation):
            self.relation = self.relation.to_extension()
        return self.relation

    # -- alternative sortings (Section 5.2) --------------------------------------
    def sorted_view(self, attributes: tuple[str, ...], reverse: bool = False) -> Relation:
        """A memoized sorted representation of this element.

        Section 5.2: "Consider, for example, the case where alternative
        sortings are required" — each requested ordering is computed once
        and co-exists with the unsorted instance.
        """
        key = (tuple(attributes), reverse)
        if self._sorted_views is None:
            self._sorted_views = {}
        view = self._sorted_views.get(key)
        if view is None:
            view = self.extension().sorted_by(list(attributes), reverse=reverse)
            self._sorted_views[key] = view
        return view


def lru_scorer(element: CacheElement) -> float:
    """Plain LRU: the least recently touched element scores highest."""
    return -float(element.sequence)


def key_of(definition: PSJQuery) -> tuple:
    """The canonical identity the cache and the MQO registry share.

    This is the **canonical tier** of cache lookup (ROADMAP item 1):
    the key comes from :func:`repro.core.canonical.canonical_key`, so
    alpha-equivalent spellings — reordered conjuncts, renamed variables,
    foldable intervals (``x>5 ∧ x>3``), respelled constants (``1`` vs
    ``1.0``) — all index the same element and exact-canonical hits
    bypass subsumption scoring entirely.  ``PSJQuery.canonical_key()``
    (the *structural* key) remains available for order-sensitive exact
    matching (the exact-cache baseline uses it)."""
    return canonical_key(definition)


class Cache:
    """Bounded storage of cache elements with pluggable replacement.

    ``capacity_bytes`` bounds the summed size estimates of all elements;
    eviction runs on insert.  The eviction scorer defaults to LRU and is
    replaced by the Advice Manager with an advice-modified scorer when a
    path expression is being tracked.
    """

    def __init__(
        self,
        capacity_bytes: int = 4_000_000,
        metrics: Metrics | None = None,
        tracer=None,
        clock=None,
    ):
        if capacity_bytes <= 0:
            raise CacheError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.metrics = metrics
        #: Optional SimClock: stamps the efficacy ledger's created/last-used
        #: times and ages.  Without one, all timestamps stay 0.0.
        self.clock = clock
        if tracer is None:
            from repro.obs.tracer import Tracer

            tracer = Tracer.disabled()
        self.tracer = tracer
        self._elements: dict[str, CacheElement] = {}
        #: Discarded-while-pinned elements: logically gone (no lookups),
        #: physically resident until the last pin is released.
        self._condemned: dict[str, CacheElement] = {}
        #: Predicate index, element ids in insertion order.  An inner dict
        #: (not a set) so iteration order is element-creation order — a set
        #: here iterates in string-hash order, which is randomized per
        #: process and leaks into planner tie-breaks among equal
        #: subsumption matches (same seed, different bytes across runs).
        self._by_predicate: dict[str, dict[str, None]] = {}
        self._by_key: dict[tuple, str] = {}
        #: Derivation DAG, parent id -> child ids in insertion order (an
        #: inner dict, not a set, for the same determinism reason as the
        #: predicate index).  Only live parent/child pairs are kept.
        self._children: dict[str, dict[str, None]] = {}
        self._clock = itertools.count(1)
        self._ids = itertools.count(1)
        #: Cost-based by default (see :meth:`cost_scorer`); the Advice
        #: Manager layers path-expression offsets on top of it, and tests
        #: may install plain :func:`lru_scorer` or a custom one.
        self.scorer: EvictionScorer = self.cost_scorer
        self.eviction_count = 0
        #: Bumped on every store/discard; plans tagged with an older epoch
        #: must re-validate their matched elements before executing.
        self.epoch = 0
        #: Elements whose storage was actually released — immediately for
        #: unpinned discards, on the last unpin for condemned ones; each
        #: element counts exactly once.
        self.reclaim_count = 0

    # -- storage ---------------------------------------------------------------
    def store(
        self,
        definition: PSJQuery,
        relation: Relation | GeneratorRelation,
        use: str | None = None,
        derivation_seconds: float = 0.0,
        kind: str = "view",
        parents: tuple[str, ...] = (),
        operator: str = "",
    ) -> CacheElement:
        """Insert a new element (evicting as needed); returns it.

        If an element with a structurally identical definition exists, it
        is reused (Section 5.2: "the CMS is able to use a single instance
        of the relation in the cache ... to represent more than one of
        these uses").  ``derivation_seconds`` seeds the efficacy ledger of
        a *newly created* element only — an existing element keeps the
        cost it was actually derived at, and likewise keeps its original
        kind and lineage.

        ``kind``/``parents``/``operator`` record derivation lineage for
        operator-level intermediates: ``parents`` are ids of live elements
        this one was computed from (ids of already-retired elements are
        dropped — the DAG only ever points at live ancestors, which also
        makes cycles impossible by construction).
        """
        key = key_of(definition)
        existing_id = self._by_key.get(key)
        if existing_id is not None:
            element = self._elements[existing_id]
            self.touch(element)
            if kind == "view" and element.kind == "intermediate":
                # A named view now backs this definition (a whole-ship
                # fetch is registered before the CMS stores its answer):
                # promote it so view-level policies — advice path-distance
                # offsets name whole views — apply.  The alpha-equivalent
                # view definition replaces the internal one (same
                # canonical key, but the *view's* name is what path
                # expressions track).  Lineage is kept.
                element.kind = "view"
                element.definition = definition
            if element.derivation_seconds <= 0.0:
                element.derivation_seconds = max(derivation_seconds, 0.0)
            if use:
                element.uses.add(use)
            return element

        self.epoch += 1
        now = self.clock.now if self.clock is not None else 0.0
        live_parents = [
            p for p in dict.fromkeys(parents) if p in self._elements
        ]
        depth = (
            1 + max(self._elements[p].depth for p in live_parents)
            if live_parents
            else 0
        )
        element = CacheElement(
            element_id=f"E{next(self._ids)}",
            definition=definition,
            relation=relation,
            sequence=next(self._clock),
            epoch=self.epoch,
            created_at=now,
            last_used_at=now,
            derivation_seconds=max(derivation_seconds, 0.0),
            kind=kind,
            parents=tuple(live_parents),
            operator=operator,
            depth=depth,
        )
        if use:
            element.uses.add(use)
        self._make_room(element.estimated_bytes(), exempt={element.element_id})
        # Making room may itself have evicted a parent: lineage only ever
        # points at elements that are live at registration time.
        element.parents = tuple(
            p for p in element.parents if p in self._elements
        )
        self._elements[element.element_id] = element
        self._by_key[key] = element.element_id
        for pred in dict.fromkeys(definition.predicates()):
            self._by_predicate.setdefault(pred, {})[element.element_id] = None
        for parent_id in element.parents:
            self._children.setdefault(parent_id, {})[element.element_id] = None
        if kind == "intermediate" and self.metrics is not None:
            self.metrics.incr(CACHE_INTERMEDIATE_STORES)
        return element

    def discard(self, element_id: str) -> None:
        """Remove an element and its index entries (no-op if absent).

        A pinned element is *condemned* instead: it disappears from every
        lookup structure immediately (new queries cannot find it) but its
        storage stays accounted until the last pin is released, at which
        point it is reclaimed exactly once.
        """
        element = self._elements.pop(element_id, None)
        if element is None:
            return
        self.epoch += 1
        self._by_key.pop(key_of(element.definition), None)
        for pred in dict.fromkeys(element.definition.predicates()):
            members = self._by_predicate.get(pred)
            if members is not None:
                members.pop(element_id, None)
                if not members:
                    del self._by_predicate[pred]
        # Prune the derivation DAG: the element's own fan-out entry, and
        # its slot in each live parent's children list.  Children keep a
        # stale id in ``parents`` (harmless: every walk checks liveness).
        self._children.pop(element_id, None)
        for parent_id in element.parents:
            members = self._children.get(parent_id)
            if members is not None:
                members.pop(element_id, None)
                if not members:
                    del self._children[parent_id]
        if element.pin_count > 0:
            element.condemned = True
            self._condemned[element_id] = element
            if self.metrics is not None:
                self.metrics.incr(CACHE_PIN_DEFERRALS)
        else:
            self.reclaim_count += 1

    # -- concurrency control ------------------------------------------------------
    def pin(self, element: CacheElement) -> None:
        """Take a reference on ``element``: exempt from eviction, and its
        reclamation is deferred until the matching :meth:`unpin`."""
        element.pin_count += 1

    def unpin(self, element: CacheElement) -> None:
        """Release one pin; reclaims a condemned element on the last one."""
        if element.pin_count <= 0:
            raise CacheError(
                f"unpin of {element.element_id} without a matching pin"
            )
        element.pin_count -= 1
        if element.pin_count == 0 and element.condemned:
            if self._condemned.pop(element.element_id, None) is not None:
                self.reclaim_count += 1

    def validate(self, element: CacheElement) -> bool:
        """True while ``element`` is still the live entry for its id —
        i.e. it has not been evicted, condemned, or replaced since it was
        matched (epoch-tagged invalidation for in-flight plans)."""
        return self._elements.get(element.element_id) is element

    def _make_room(self, incoming_bytes: int, exempt: set[str]) -> None:
        if incoming_bytes > self.capacity_bytes:
            raise CacheCapacityError(
                f"element of ~{incoming_bytes} bytes exceeds cache capacity "
                f"{self.capacity_bytes}"
            )
        while self.used_bytes() + incoming_bytes > self.capacity_bytes:
            victim = self._pick_victim(exempt)
            if victim is None:
                raise CacheCapacityError(
                    "cache full and every element is pinned or exempt"
                )
            if victim.pinned or self._has_pinned_descendant(victim.element_id):
                from repro.common.errors import InvariantViolation

                raise InvariantViolation(
                    f"eviction chose {victim.element_id}, which is pinned "
                    "or has a pinned derivation descendant"
                )
            victim_bytes = victim.estimated_bytes()
            if self.metrics is not None:
                self.metrics.incr(CACHE_EVICTIONS)
                self.metrics.observe(H_EVICTED_ELEMENT_BYTES, victim_bytes)
            self.tracer.event(
                "cache.evict",
                element=victim.element_id,
                view=victim.view_name,
                bytes=victim_bytes,
            )
            self.discard(victim.element_id)
            self.eviction_count += 1

    def _pick_victim(self, exempt: set[str]) -> CacheElement | None:
        candidates = [
            e
            for e in self._elements.values()
            if not e.pinned
            and e.element_id not in exempt
            and not self._has_pinned_descendant(e.element_id)
        ]
        if not candidates:
            return None
        return max(candidates, key=self.scorer)

    def _has_pinned_descendant(self, element_id: str) -> bool:
        """True when a live (transitive) derivation descendant is pinned:
        such an element must not be evicted — a concurrent plan holding
        the descendant may still walk its lineage."""
        stack = list(self._children.get(element_id, ()))
        seen: set[str] = set()
        while stack:
            child_id = stack.pop()
            if child_id in seen:
                continue
            seen.add(child_id)
            child = self._elements.get(child_id)
            if child is None:
                continue
            if child.pinned:
                return True
            stack.extend(self._children.get(child_id, ()))
        return False

    # -- cost-based replacement ---------------------------------------------------
    def decayed_frequency(self, element: CacheElement) -> float:
        """The element's observed hit frequency, decayed by idle time
        (half-life :data:`REUSE_HALF_LIFE`; no decay without a clock)."""
        frequency = element.reuse_frequency
        if frequency <= 0.0:
            return 0.0
        if self.clock is not None:
            idle = max(self.clock.now - element.last_used_at, 0.0)
            if idle > 0.0:
                frequency *= 0.5 ** (idle / REUSE_HALF_LIFE)
        return frequency

    def element_value(self, element: CacheElement) -> float:
        """GreedyDual-style retention value: measured recomputation cost x
        predicted reuse (advice weight + decayed observed frequency) per
        byte of cache spent keeping it."""
        reuse = element.advice_weight + self.decayed_frequency(element)
        return (
            element.derivation_seconds
            * reuse
            / max(element.estimated_bytes(), 1)
        )

    def cost_scorer(self, element: CacheElement) -> float:
        """The default eviction scorer: LRU recency minus a scaled value
        term, so zero-cost elements (derivation_seconds == 0) degrade to
        exact LRU while expensive, reused, compact elements are retained
        far past their recency."""
        return lru_scorer(element) - VALUE_WEIGHT * self.element_value(element)

    # -- lookup -----------------------------------------------------------------
    def touch(self, element: CacheElement) -> None:
        """Record a use: bumps the LRU clock, the use count, and the
        decayed reuse frequency — and warms derivation ancestors, so a hit
        on a derived element keeps the inputs it came from alive (policy:
        each ancestor level receives :data:`ANCESTOR_SHARE` of the hit,
        geometrically attenuated; sequence/use_count/ledger untouched)."""
        element.sequence = next(self._clock)
        element.use_count += 1
        element.reuse_frequency = self.decayed_frequency(element) + 1.0
        if self.clock is not None:
            element.last_used_at = self.clock.now
        self._warm_ancestors(element)

    def _warm_ancestors(self, element: CacheElement) -> None:
        """Propagate a reuse event up the derivation DAG (breadth-first,
        each element warmed at most once per event)."""
        share = ANCESTOR_SHARE
        frontier = list(element.parents)
        seen = {element.element_id}
        while frontier and share > 1e-6:
            next_frontier: list[str] = []
            for parent_id in frontier:
                if parent_id in seen:
                    continue
                seen.add(parent_id)
                parent = self._elements.get(parent_id)
                if parent is None:
                    continue
                parent.reuse_frequency = (
                    self.decayed_frequency(parent) + share
                )
                if self.clock is not None:
                    parent.last_used_at = self.clock.now
                next_frontier.extend(parent.parents)
            frontier = next_frontier
            share *= ANCESTOR_SHARE

    def note_hit(self, element: CacheElement) -> None:
        """Count a lookup served from an intermediate (observability)."""
        if element.kind == "intermediate" and self.metrics is not None:
            self.metrics.incr(CACHE_INTERMEDIATE_HITS)

    def credit_saving(self, element: CacheElement, seconds: float | None = None) -> None:
        """Credit the efficacy ledger: serving from ``element`` avoided
        re-paying (by default) its recorded derivation cost.

        Pure bookkeeping — no simulated time is charged, no trace event is
        emitted; the aggregate lands in
        :data:`~repro.common.metrics.CACHE_SAVED_SECONDS`.  Like
        :meth:`touch`, a credit also warms derivation ancestors (the
        saving was only possible because the inputs were retained).
        """
        saved = element.derivation_seconds if seconds is None else seconds
        if saved <= 0:
            return
        element.saved_seconds += saved
        if self.metrics is not None:
            self.metrics.incr(CACHE_SAVED_SECONDS, saved)
        self._warm_ancestors(element)

    def get(self, element_id: str) -> CacheElement | None:
        """The element with this id, or None."""
        return self._elements.get(element_id)

    def lookup_exact(self, definition: PSJQuery) -> CacheElement | None:
        """An element whose definition shares this canonical key.

        The classic exact-match reuse of [SELL87]/[IOAN88] widened by the
        canonical tier: a hit may be a structurally identical definition
        *or* an alpha-equivalent variant spelling of one — either way the
        stored extension answers the query verbatim."""
        element_id = self._by_key.get(key_of(definition))
        if element_id is None:
            return None
        return self._elements[element_id]

    def elements_for_predicate(self, pred: str) -> list[CacheElement]:
        """Step-1 candidate filter: elements whose definition mentions
        ``pred`` (the paper's ``(predicate name, cache element)`` index),
        in element-creation order (deterministic: planner tie-breaks among
        equal subsumption matches depend on it)."""
        ids = self._by_predicate.get(pred, ())
        return [self._elements[i] for i in ids]

    def elements(self) -> list[CacheElement]:
        """All elements (unordered snapshot)."""
        return list(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element_id: str) -> bool:
        return element_id in self._elements

    # -- accounting ----------------------------------------------------------------
    def used_bytes(self) -> int:
        """Summed size estimates of all resident elements (condemned ones
        still occupy their storage until the last pin is released)."""
        return sum(e.estimated_bytes() for e in self._elements.values()) + sum(
            e.estimated_bytes() for e in self._condemned.values()
        )

    def condemned_elements(self) -> list[CacheElement]:
        """Elements awaiting reclamation (discarded while pinned)."""
        return list(self._condemned.values())

    # -- efficacy ledger -----------------------------------------------------------
    def element_report(self, element: CacheElement) -> dict:
        """One element's efficacy ledger entry (JSON-friendly)."""
        now = self.clock.now if self.clock is not None else 0.0
        expected = element.advice_expected_reuse
        observed = element.use_count > 0
        return {
            "element": element.element_id,
            "view": element.view_name,
            "kind": element.kind,
            "operator": element.operator,
            "parents": list(element.parents),
            "depth": element.depth,
            "bytes": element.estimated_bytes(),
            "rows": element.rows_materialized(),
            "hits": element.use_count,
            "reuse_frequency": element.reuse_frequency,
            "derivation_seconds": element.derivation_seconds,
            "saved_seconds": element.saved_seconds,
            "created_at": element.created_at,
            "last_used_at": element.last_used_at,
            "age_seconds": max(now - element.created_at, 0.0),
            "idle_seconds": max(now - element.last_used_at, 0.0),
            "advice_expected_reuse": expected,
            "observed_reuse": observed,
            "advice_agrees": None if expected is None else expected == observed,
            "expendable": element.expendable,
            "pinned": element.pinned,
        }

    def report(self) -> dict:
        """The per-element efficacy ledger plus aggregate totals.

        Deterministic: elements are ordered by numeric id.  This is the
        measurement substrate cost-based replacement (value =
        recomputation cost x reuse / bytes) and advice mining need — see
        docs/observability.md.
        """
        def element_order(element: CacheElement):
            element_id = element.element_id
            try:
                return (0, int(element_id.lstrip("E")))
            except ValueError:
                return (1, 0)

        entries = [
            self.element_report(element)
            for element in sorted(self._elements.values(), key=element_order)
        ]
        advised = [e for e in entries if e["advice_expected_reuse"] is not None]
        return {
            "elements": entries,
            "totals": {
                "elements": len(entries),
                "bytes": sum(e["bytes"] for e in entries),
                "hits": sum(e["hits"] for e in entries),
                "derivation_seconds": sum(e["derivation_seconds"] for e in entries),
                "saved_seconds": sum(e["saved_seconds"] for e in entries),
                "evictions": self.eviction_count,
                "advised": len(advised),
                "advice_correct": sum(1 for e in advised if e["advice_agrees"]),
                "intermediates": sum(
                    1 for e in entries if e["kind"] == "intermediate"
                ),
                "max_depth": max((e["depth"] for e in entries), default=0),
            },
        }

    # -- invariants -----------------------------------------------------------------
    @staticmethod
    def _numeric_id(element_id: str) -> int:
        """The allocation number behind an ``E<n>`` element id (ids that
        do not follow the pattern sort first, conservatively)."""
        try:
            return int(element_id.lstrip("E"))
        except ValueError:
            return -1

    def check_invariants(self) -> None:
        """Audit the cache's internal consistency (cheap, read-only).

        Raises :class:`~repro.common.errors.InvariantViolation` when any
        structural property the implementation must maintain is broken:
        the definition-key bijection, the predicate index, refcount sanity,
        and the disjointness/reachability rules for the condemned set.
        Called from tests and after every fuzzer query.
        """
        from repro.common.errors import InvariantViolation

        if self.epoch < 0:
            raise InvariantViolation(f"cache epoch is negative: {self.epoch}")
        live_keys: set[tuple] = set()
        for element_id, element in self._elements.items():
            if element.element_id != element_id:
                raise InvariantViolation(
                    f"element stored under {element_id!r} calls itself "
                    f"{element.element_id!r}"
                )
            if element.pin_count < 0:
                raise InvariantViolation(
                    f"{element_id}: negative pin count {element.pin_count}"
                )
            if element.use_count < 0:
                raise InvariantViolation(
                    f"{element_id}: negative use count {element.use_count}"
                )
            if element.condemned:
                raise InvariantViolation(
                    f"{element_id} is live but flagged condemned"
                )
            if element.estimated_bytes() < 0:
                raise InvariantViolation(
                    f"{element_id}: negative size estimate"
                )
            if element.derivation_seconds < 0 or element.saved_seconds < 0:
                raise InvariantViolation(
                    f"{element_id}: negative efficacy accounting "
                    f"(derivation={element.derivation_seconds}, "
                    f"saved={element.saved_seconds})"
                )
            if element.last_used_at < element.created_at:
                raise InvariantViolation(
                    f"{element_id}: last used at {element.last_used_at} "
                    f"before created at {element.created_at}"
                )
            if element.depth < 0 or element.reuse_frequency < 0:
                raise InvariantViolation(
                    f"{element_id}: negative lineage statistics "
                    f"(depth={element.depth}, "
                    f"frequency={element.reuse_frequency})"
                )
            for parent_id in element.parents:
                parent = self._elements.get(parent_id)
                if parent is None:
                    continue  # evicted ancestor: stale id is expected
                # Ids are allocated in store order and parents must exist
                # when their child is stored, so every live edge points
                # from a smaller numeric id to a larger one — which is
                # also a proof of DAG acyclicity.
                if self._numeric_id(parent_id) >= self._numeric_id(element_id):
                    raise InvariantViolation(
                        f"{element_id}: lineage edge from {parent_id} does "
                        "not respect store order (cycle risk)"
                    )
                if element_id not in self._children.get(parent_id, ()):
                    raise InvariantViolation(
                        f"{element_id} missing from live parent "
                        f"{parent_id}'s children index"
                    )
            key = key_of(element.definition)
            live_keys.add(key)
            if self._by_key.get(key) != element_id:
                raise InvariantViolation(
                    f"{element_id} is not reachable through its canonical key"
                )
            for pred in set(element.definition.predicates()):
                if element_id not in self._by_predicate.get(pred, ()):
                    raise InvariantViolation(
                        f"{element_id} missing from predicate index for {pred!r}"
                    )
        if len(self._by_key) != len(self._elements):
            raise InvariantViolation(
                f"key index has {len(self._by_key)} entries for "
                f"{len(self._elements)} elements"
            )
        for pred, members in self._by_predicate.items():
            if not members:
                raise InvariantViolation(f"empty predicate-index bucket {pred!r}")
            for element_id in members:
                if element_id not in self._elements:
                    raise InvariantViolation(
                        f"predicate index for {pred!r} references retired "
                        f"element {element_id}"
                    )
        for parent_id, members in self._children.items():
            if parent_id not in self._elements:
                raise InvariantViolation(
                    f"children index keeps retired parent {parent_id}"
                )
            if not members:
                raise InvariantViolation(
                    f"empty children-index bucket for {parent_id}"
                )
            for child_id in members:
                child = self._elements.get(child_id)
                if child is None:
                    raise InvariantViolation(
                        f"children index of {parent_id} references retired "
                        f"element {child_id}"
                    )
                if parent_id not in child.parents:
                    raise InvariantViolation(
                        f"{child_id} listed under {parent_id} but does not "
                        "name it as a parent"
                    )
        for element_id, element in self._condemned.items():
            if element_id in self._elements:
                raise InvariantViolation(
                    f"{element_id} is both live and condemned"
                )
            if not element.condemned:
                raise InvariantViolation(
                    f"{element_id} sits in the condemned set without the flag"
                )
            if element.pin_count <= 0:
                raise InvariantViolation(
                    f"condemned {element_id} has no pins and was never reclaimed"
                )

    def clear(self) -> None:
        """Drop every element and index entry (pins notwithstanding)."""
        self._elements.clear()
        self._condemned.clear()
        self._by_predicate.clear()
        self._by_key.clear()
        self._children.clear()
        self.epoch += 1


class StaleArchive:
    """Possibly-outdated copies of remote answers, kept for degraded service.

    When the remote DBMS is unreachable and retries are exhausted, the CMS
    would rather answer from an older copy than not at all (the paper's
    bias toward answering from cache whenever possible).  The archive keeps
    the last ``max_elements`` remote-derived results *outside* the cache's
    byte budget — they survive eviction and tiny-cache configurations —
    and answers are tagged degraded because their freshness is unknown.

    Count-bounded FIFO: archived copies are cheap insurance, not a second
    cache; no replacement advice applies to them.
    """

    def __init__(self, max_elements: int = 64):
        if max_elements <= 0:
            raise CacheError("archive capacity must be positive")
        self.max_elements = max_elements
        # An unbounded-bytes Cache reuses key canonicalization and the
        # predicate index, so subsumption search works on stale copies too.
        self.cache = Cache(capacity_bytes=1 << 40)
        self._order: deque[str] = deque()

    def store(self, definition: PSJQuery, relation: Relation) -> None:
        """Record (or refresh) the archived copy of one remote answer."""
        before = len(self.cache)
        element = self.cache.store(definition, relation)
        if len(self.cache) > before:
            self._order.append(element.element_id)
            while len(self.cache) > self.max_elements:
                self.cache.discard(self._order.popleft())
        else:
            # Same definition seen again: keep the freshest copy.
            element.relation = relation
            element._indexes = None
            element._sorted_views = None

    def __len__(self) -> int:
        return len(self.cache)

    def find_full(self, query: PSJQuery):
        """A full subsumption match from the archive, or None."""
        from repro.core.subsumption import find_relevant

        for match in find_relevant(self.cache, query):
            if match.is_full:
                return match
        return None
