"""The Cache Management System (CMS) facade.

"Functionally, the CMS is a main memory relational database management
system where the database [is] referred to as the cache. ... The CMS
accepts CAQL queries and advice from the IE and executes CAQL queries by
accessing data from the cache and/or the remote DBMS." (Section 3)

The request path for one conjunctive CAQL query:

1. track the query against the session's path expression;
2. normalize to PSJ (evaluable literals split off as a local residue);
3. plan (Section 5.3's three steps: generalize?, find relevant elements,
   generate plan) and execute (parallel cache/remote, streams);
4. cache the result (advice permitting), build advised indexes;
5. prefetch sequence companions predicted by the path expression.

Every technique is individually toggleable through :class:`CMSFeatures` —
the ablation knobs behind experiment E1 — and the CMS works with no advice
at all (the paper requires this).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import (
    AdviceError,
    CacheCapacityError,
    PlanningError,
    RemoteDBMSError,
    StalePlanError,
    TranslationError,
)
from repro.common.metrics import (
    CACHE_GENERALIZATIONS,
    CACHE_HITS_CANONICAL,
    CACHE_HITS_EXACT,
    CACHE_HITS_SUBSUMED,
    CACHE_INDEX_BUILDS,
    CACHE_MISSES,
    CACHE_PREFETCHES,
    CACHE_STALE_REPLANS,
    H_QUERY_SIM_SECONDS,
    IE_CAQL_QUERIES,
    REMOTE_DEGRADED_ANSWERS,
    Metrics,
)
from repro.logic.builtins import BuiltinRegistry
from repro.logic.terms import Atom, Const, Substitution, Var
from repro.relational.columnar import ColumnarBatch
from repro.relational.generator import GeneratorRelation
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.statistics import RelationStatistics
from repro.remote.faults import RetryPolicy
from repro.remote.server import RemoteDBMS
from repro.advice.language import AdviceSet
from repro.caql.ast import (
    AggregateQuery,
    CAQLQuery,
    ConjunctiveQuery,
    QuantifiedQuery,
    SetOfQuery,
)
from repro.caql.eval import (
    core_plan,
    evaluate_aggregate,
    evaluate_quantified,
    evaluate_setof,
)
from repro.caql.psj import PSJQuery, psj_from_literals
from repro.core.advice_manager import AdviceManager
from repro.core.cache import Cache, StaleArchive, lru_scorer
from repro.core.cache_model import cache_model, cache_statistics
from repro.core.executor import ExecutionMonitor, ResultStream
from repro.core.planner import PlannerFeatures, QueryPlanner
from repro.core.rdi import RemoteInterface

logger = logging.getLogger("repro.cms")


@dataclass
class CMSFeatures(PlannerFeatures):
    """All CMS technique toggles (extends the planner's)."""

    advice_replacement: bool = True
    #: Register operator-level intermediates (remote plan parts, derived
    #: cache subsets, semijoin-reduced fetches, federated gather parts) as
    #: first-class cache elements with derivation lineage.
    intermediates: bool = True
    #: Shared multi-query optimization: reuse concurrent sessions'
    #: in-flight identical remote subplans (needs a server-provided
    #: registry; inert for a standalone CMS).
    mqo: bool = True
    #: Cost-based replacement: retain expensive, reused, compact elements
    #: past their LRU recency (``Cache.cost_scorer``).  Off = plain LRU as
    #: the base scorer (advice offsets, if any, still apply on top).
    cost_replacement: bool = True
    #: Batch independently-needed remote fetches (prefetch companions,
    #: multi-part remote plans) into one round trip.
    batching: bool = True
    buffer_size: int = 64
    #: Client-side resilience for the remote link (retries, backoff,
    #: timeout, circuit breaker).  The default policy is inert on a
    #: healthy link.
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Serve stale/partial cache answers when retries are exhausted.
    degradation: bool = True
    #: How many remote answers the stale archive retains for degradation.
    archive_elements: int = 64

    @classmethod
    def none(cls) -> "CMSFeatures":
        """Everything off — degrades the CMS to a loose-coupling shim."""
        return cls(
            caching=False,
            subsumption=False,
            canonical=False,
            lazy=False,
            prefetch=False,
            generalization=False,
            indexing=False,
            parallel=False,
            semijoin=False,
            columnar=False,
            advice_replacement=False,
            intermediates=False,
            mqo=False,
            cost_replacement=False,
            batching=False,
            retry_policy=RetryPolicy.none(),
            degradation=False,
        )


class CacheManagementSystem:
    """The bridge between an inference engine and a remote DBMS."""

    def __init__(
        self,
        remote: RemoteDBMS,
        capacity_bytes: int = 4_000_000,
        features: CMSFeatures | None = None,
        builtins: BuiltinRegistry | None = None,
        cache: Cache | None = None,
        metrics: Metrics | None = None,
        pin_streams: bool = False,
        tracer=None,
        rdi: RemoteInterface | None = None,
        backend_of=None,
        subplan_registry=None,
    ):
        self.remote = remote
        self.clock: SimClock = remote.clock
        #: The shared trace sink.  Defaults to the remote's tracer so one
        #: tracer covers the whole bridge; pass an explicit tracer (or
        #: leave both disabled) to control scope.
        self.tracer = tracer if tracer is not None else remote.tracer
        #: The ledger this CMS records into.  Defaults to the remote's
        #: (single-session behaviour); a multi-session server hands every
        #: session its own child scope of one shared registry, so two CMS
        #: instances never pollute each other's numbers.
        self.metrics: Metrics = metrics if metrics is not None else remote.metrics
        self.profile: CostProfile = remote.profile
        self.features = features if features is not None else CMSFeatures()
        self.builtins = builtins if builtins is not None else BuiltinRegistry()

        #: ``cache`` may be shared between several CMS instances (the
        #: multi-session server's whole point); each instance still owns
        #: its advice context, planner, and monitor.
        self.cache = (
            cache
            if cache is not None
            else Cache(
                capacity_bytes,
                metrics=self.metrics,
                tracer=self.tracer,
                clock=self.clock,
            )
        )
        self.shares_cache = cache is not None
        self.advice_manager = AdviceManager()
        #: The remote interface.  Built here for the single-server case; a
        #: federation injects its own scatter-gather implementation of the
        #: same contract (``rdi=``), which keeps its per-backend retry
        #: budgets and breakers instead of the CMS-level policy.
        self.rdi = (
            rdi
            if rdi is not None
            else RemoteInterface(
                remote, self.features.buffer_size, self.features.retry_policy
            )
        )
        self._archive = (
            StaleArchive(self.features.archive_elements)
            if self.features.degradation
            else None
        )
        self._last_degraded = False
        #: The most recent plan the planner produced for this CMS (the one
        #: actually executed, post-replan).  Purely observational: the qa
        #: subsystem audits it after every query.
        self.last_plan = None
        self.planner = QueryPlanner(
            self.cache,
            self.advice_manager,
            self.rdi.statistics_of,
            self.profile,
            self.features,
            remote_available=self.rdi.remote_available,
            tracer=self.tracer,
            backend_of=backend_of,
        )
        self.monitor = ExecutionMonitor(
            self.cache,
            self.rdi,
            self.clock,
            self.profile,
            self.metrics,
            parallel=self.features.parallel,
            should_index=self._should_auto_index,
            pin_streams=pin_streams,
            tracer=self.tracer,
            batch_remote=self.features.batching,
            engine="columnar" if self.features.columnar else "tuple",
            cache_intermediates=(
                self.features.caching and self.features.intermediates
            ),
            subplan_registry=(
                subplan_registry if self.features.mqo else None
            ),
        )

    def _should_auto_index(self, view_name: str) -> bool:
        """Executor callback: consumer-annotated views trigger indexing of
        the cache element that serves their derivations."""
        return self.features.indexing and bool(
            self.advice_manager.index_positions(view_name)
        )

    # -- sessions -----------------------------------------------------------------
    def begin_session(self, advice: AdviceSet | None = None) -> None:
        """Start an IE session: a set of advice, then a query sequence."""
        if advice is not None and not advice.is_empty():
            logger.debug(
                "session: %d views, path=%s",
                len(advice.views),
                advice.path_expression,
            )
        else:
            logger.debug("session: no advice")
        self.advice_manager.begin_session(advice)
        self.activate()

    def activate(self) -> None:
        """Install this session's replacement scorer on the cache.

        With a private cache this runs once per ``begin_session``; with a
        shared cache the server calls it before every scheduled step, so
        replacement decisions always follow the advice of the session
        whose query is running.
        """
        base = (
            self.cache.cost_scorer
            if self.features.cost_replacement
            else lru_scorer
        )
        if self.features.advice_replacement:
            # Advice offsets layered over the base (cost or LRU) scorer.
            self.cache.scorer = self.advice_manager.replacement_scorer(
                base_scorer=base
            )
        else:
            self.cache.scorer = base
        # Federated links expose a gather-part sink: each unreduced
        # per-backend part becomes an intermediate with lineage, so later
        # spanning queries can subsume single-backend shares from cache.
        if hasattr(self.rdi, "intermediate_sink"):
            self.rdi.intermediate_sink = (
                self._store_gather_part
                if self.features.caching and self.features.intermediates
                else None
            )

    # -- metadata for the IE ---------------------------------------------------------
    def schema_of(self, table: str) -> Schema:
        """Remote schema lookup for the IE (cached)."""
        return self.rdi.schema_of(table)

    def statistics_of(self, table: str) -> RelationStatistics:
        """Remote statistics lookup for the IE (cached)."""
        return self.rdi.statistics_of(table)

    def cache_model(self) -> Relation:
        """The cache model relation (queryable by the IE, Section 3)."""
        return cache_model(self.cache)

    def cache_statistics(self) -> dict[str, float]:
        """Aggregate cache statistics (size, fill, evictions)."""
        return cache_statistics(self.cache)

    # -- the CAQL query interface ------------------------------------------------------
    def query(self, q: CAQLQuery) -> ResultStream:
        """Execute a CAQL query; returns a result stream.

        Every call (nested sub-queries of aggregates/quantifiers included)
        is traced as a ``cms.query`` span and its simulated latency lands
        in the :data:`~repro.common.metrics.H_QUERY_SIM_SECONDS` histogram
        — latency recording is unconditional, tracing costs nothing when
        the tracer is disabled.
        """
        view = getattr(q, "name", None) or getattr(
            getattr(q, "base", None), "name", type(q).__name__
        )
        with self.tracer.span(
            "cms.query", view=view, session=self.metrics.scope_name
        ) as span:
            start = self.clock.now
            stream = self._query_inner(q)
            self.metrics.observe(H_QUERY_SIM_SECONDS, self.clock.now - start)
            if self.tracer.enabled:
                span.set("degraded", stream.degraded)
                span.set("lazy", stream.lazy)
                self._trace_stream_drain(stream, view)
            return stream

    def _trace_stream_drain(self, stream: ResultStream, view: str) -> None:
        """Emit ``stream.ready`` now (eager) or ``stream.drained`` when a
        lazy stream's generator exhausts — wherever the drain happens, the
        event lands on whatever span is open there (a server drain step,
        say), which is exactly the interleaving worth seeing."""
        relation = stream._relation
        if isinstance(relation, GeneratorRelation) and not relation.exhausted:
            previous = relation.on_exhausted
            tracer = self.tracer

            def drained() -> None:
                tracer.event(
                    "stream.drained", view=view, rows=relation.produced_count
                )
                if previous is not None:
                    previous()

            relation.on_exhausted = drained
        else:
            self.tracer.event("stream.ready", view=view, rows=len(relation))

    def explain(self, q: CAQLQuery):
        """Plan ``q`` and report the full rationale **without executing**.

        Returns a :class:`~repro.core.query_explain.PlanExplanation`:
        the chosen strategy, lazy/eager and caching decisions, planner
        notes, and per-candidate subsumption rationale (why each cache
        element matched or was rejected).  Nothing is fetched, cached,
        or charged, and the advice session statistics are not touched.
        """
        from repro.core.query_explain import explain_query

        return explain_query(self, q)

    def _query_inner(self, q: CAQLQuery) -> ResultStream:
        if isinstance(q, AggregateQuery):
            base_stream = self.query(q.base)
            base = base_stream.as_relation()
            return ResultStream(
                evaluate_aggregate(q, base), q.base.name, degraded=base_stream.degraded
            )
        if isinstance(q, SetOfQuery):
            base_stream = self.query(q.base)
            base = base_stream.as_relation()
            return ResultStream(
                evaluate_setof(q, base), q.base.name, degraded=base_stream.degraded
            )
        if isinstance(q, QuantifiedQuery):
            base_stream = self.query(q.base)
            base = base_stream.as_relation()
            within_stream = self.query(q.within) if q.within is not None else None
            within = within_stream.as_relation() if within_stream is not None else None
            degraded = base_stream.degraded or (
                within_stream is not None and within_stream.degraded
            )
            return ResultStream(
                evaluate_quantified(q, base, within), q.base.name, degraded=degraded
            )
        if not isinstance(q, ConjunctiveQuery):
            raise PlanningError(f"not a CAQL query: {q!r}")

        self.metrics.incr(IE_CAQL_QUERIES)
        self.advice_manager.observe_query(q.name)

        psj, core_vars, evaluable = core_plan(q, self.builtins)
        if not evaluable:
            psj = psj_from_literals(
                q.name, q.relation_literals(), q.comparison_literals(), q.answers
            )
            self._last_degraded = False
            result = self._answer_psj(psj)
            self._prefetch_companions(q.name)
            return ResultStream(result, q.name, degraded=self._last_degraded)

        # Evaluable residue: answer the PSJ core through the cache
        # machinery, then run the built-ins row-wise in the CMS (operations
        # the remote DBMS does not support, Section 5.3).
        self._last_degraded = False
        core_result = self._materialize(self._answer_psj(psj))
        final = self._apply_evaluable(q, core_vars, evaluable, core_result)
        self._prefetch_companions(q.name)
        return ResultStream(final, q.name, degraded=self._last_degraded)

    def query_pattern(self, pattern: Atom) -> ResultStream:
        """Execute an IE-query given as an instantiated view pattern.

        Section 5.3.1: "An IE-query is an instance of one of the view
        specifications with constant bindings" — ``pattern`` is that
        instance, e.g. ``d2(X, c6)``; the view definition comes from the
        session's advice.
        """
        view = self.advice_manager.view(pattern.pred)
        if view is None:
            raise AdviceError(
                f"IE-query {pattern} names no view specification in the session advice"
            )
        definition = view.definition
        if definition.arity != pattern.arity:
            raise AdviceError(
                f"IE-query {pattern} arity does not match view {view.name}/{definition.arity}"
            )
        bindings = Substitution()
        for answer, arg in zip(definition.answers, pattern.args):
            if isinstance(arg, Const):
                if isinstance(answer, Var):
                    bindings = bindings.bind(answer, arg)
                elif answer != arg:
                    raise AdviceError(
                        f"IE-query {pattern} conflicts with pinned constant in {view.name}"
                    )
        return self.query(definition.instantiate(bindings))

    # -- internals -------------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Audit every auditable structure this CMS touches.

        Runs the ``check_invariants`` hooks of the cache, the metrics
        ledger (from its root, so sibling session scopes are covered too),
        and the last produced plan.  Cheap enough to call after every
        query; the fuzzer does exactly that.
        """
        self.cache.check_invariants()
        root = self.metrics
        while root.parent is not None:
            root = root.parent
        root.check_invariants()
        if self.last_plan is not None:
            self.last_plan.check_invariants()

    def _answer_psj(self, psj: PSJQuery) -> Relation | GeneratorRelation | ColumnarBatch:
        plan = self.planner.plan(psj)
        self.last_plan = plan

        # Generalization (step 1): fetch the general form first, replan.
        # A failed prefetch must not fail the query it was meant to help.
        if plan.prefetches:
            for general in plan.prefetches:
                logger.debug("generalize: fetching %s for %s", general.name, psj.name)
                try:
                    self._fetch_and_cache(general, view_name=psj.name)
                except CacheCapacityError:
                    logger.debug("generalize: %s did not fit the cache", general.name)
                    continue
                except RemoteDBMSError:
                    logger.debug("generalize: remote failure fetching %s", general.name)
                    continue
                self.metrics.incr(CACHE_GENERALIZATIONS)
                self.tracer.event("cms.generalized", view=psj.name, general=general.name)
            plan = self.planner.plan(psj)
            self.last_plan = plan

        if plan.strategy == "exact":
            self.metrics.incr(CACHE_HITS_EXACT)
            if plan.canonical_hit:
                # Served by the canonical tier: a variant spelling of a
                # stored definition, recognized without subsumption.
                self.metrics.incr(CACHE_HITS_CANONICAL)
        elif plan.strategy == "cache-full":
            self.metrics.incr(CACHE_HITS_SUBSUMED)
        elif plan.strategy == "hybrid":
            self.metrics.incr(CACHE_HITS_SUBSUMED)
        elif plan.strategy == "remote":
            self.metrics.incr(CACHE_MISSES)

        logger.debug("plan[%s] for %s%s", plan.strategy, psj.name,
                     " (lazy)" if plan.lazy else "")
        derivation_started = self.clock.now
        try:
            try:
                result = self.monitor.execute(plan)
            except StalePlanError:
                # A concurrent session retired a matched element between
                # planning and execution (epoch-tagged invalidation):
                # replan once against the current cache state.
                self.metrics.incr(CACHE_STALE_REPLANS)
                self.tracer.event("cms.stale_replan", view=psj.name)
                logger.debug("stale plan for %s: replanning", psj.name)
                plan = self.planner.plan(psj)
                self.last_plan = plan
                result = self.monitor.execute(plan)
        except RemoteDBMSError as error:
            # Retries are exhausted (or the breaker is open): degrade to
            # whatever the cache can still prove, rather than propagating
            # the raw failure to the IE.  Degraded answers are never
            # cached or archived — they would masquerade as fresh.
            result = self._degraded_answer(psj, plan, error)
            self._last_degraded = True
            self.metrics.incr(REMOTE_DEGRADED_ANSWERS)
            self.tracer.event(
                "cms.degraded_answer", view=psj.name, error=type(error).__name__
            )
            return result

        if self._archive is not None and plan.touches_remote:
            # Remember the fresh answer for degraded service during a
            # future outage (survives eviction from the cache proper).
            self._archive.store(psj, self._materialize(result))

        if plan.cache_result and plan.strategy != "exact":
            try:
                # The cache stores extensions/generators; a columnar batch
                # is materialized for storage while the batch itself still
                # flows to the result stream.  The efficacy ledger records
                # what deriving this answer actually cost in simulated
                # time — the price a future reuse avoids re-paying.
                element = self.cache.store(
                    psj,
                    self._cacheable(result),
                    derivation_seconds=self.clock.now - derivation_started,
                )
            except CacheCapacityError:
                return result
            if plan.expendable and element.use_count == 0:
                element.expendable = True
                element.advice_expected_reuse = False
                element.advice_weight = 0.0  # predicted single-use
            elif element.use_count > 0:
                element.expendable = False  # reuse proved the advice wrong
                element.advice_weight = max(element.advice_weight, 1.0)
            elif self.advice_manager.view(psj.name) is not None:
                element.advice_expected_reuse = True
                element.advice_weight = 2.0  # advice predicts reuse
            self._build_indexes(element, plan.index_positions)
        return result

    def _store_gather_part(self, psj: PSJQuery, relation: Relation, seconds: float) -> None:
        """Federated gather sink: register one backend's unreduced part as
        an operator-level intermediate (best-effort: a full or all-pinned
        cache must never fail the query the part was fetched for)."""
        try:
            self.cache.store(
                psj,
                relation,
                use="intermediate",
                kind="intermediate",
                operator="federated-gather",
                derivation_seconds=max(seconds, 0.0),
            )
        except CacheCapacityError:
            pass

    def _degraded_answer(self, psj: PSJQuery, plan, error: RemoteDBMSError) -> Relation:
        """Answer from stale/partial cache data after a remote failure.

        Preference order (the paper's bias toward answering from cache):
        a subsuming stale-archive copy first (complete rows, unknown
        freshness), then a partial answer derived from the plan's cache
        parts, then — federated links only — a scatter over the surviving
        backends with the dark backends' columns nulled out.  Re-raises
        ``error`` when none exists.
        """
        if not self.features.degradation:
            raise error
        if self._archive is not None:
            match = self._archive.find_full(psj)
            if match is not None:
                logger.debug(
                    "degraded[%s]: stale archive copy %s",
                    psj.name,
                    match.element.element_id,
                )
                return self.monitor.derive_degraded(match, psj)
        partial = self.monitor.execute_degraded(plan)
        if partial is not None:
            logger.debug("degraded[%s]: partial answer from cache parts", psj.name)
            return partial
        try:
            survivors = self.rdi.fetch_partial(psj)
        except RemoteDBMSError:
            survivors = None
        if survivors is not None:
            logger.debug("degraded[%s]: partial answer from surviving backends", psj.name)
            return survivors
        raise error

    def _materialize(self, result) -> Relation:
        if isinstance(result, GeneratorRelation):
            return result.to_extension()
        if isinstance(result, ColumnarBatch):
            return result.to_relation()
        return result

    def _cacheable(self, result):
        """What goes into the cache: batches materialize, generators stay
        lazy (lazy caching is the point of storing the generator)."""
        if isinstance(result, ColumnarBatch):
            return result.to_relation()
        return result

    def _apply_evaluable(
        self,
        q: ConjunctiveQuery,
        core_vars: list[Var],
        evaluable: list[Atom],
        core_result: Relation,
    ) -> Relation:
        from repro.caql.eval import apply_evaluable

        return apply_evaluable(q, core_vars, evaluable, core_result, self.builtins)

    def _fetch_and_cache(self, psj: PSJQuery, view_name: str | None = None) -> None:
        """Fetch a PSJ query remotely and install it as a cache element."""
        if self.cache.lookup_exact(psj) is not None:
            return
        fetch_started = self.clock.now
        relation = self.rdi.fetch(psj)
        element = self.cache.store(
            psj, relation, derivation_seconds=self.clock.now - fetch_started
        )
        if view_name is not None and self.features.indexing:
            positions = self.advice_manager.index_positions(view_name)
            self._build_indexes(element, positions)

    def _build_indexes(self, element, positions: tuple[int, ...]) -> None:
        if not self.features.indexing:
            return
        from repro.caql.psj import ConstProj

        for position in positions:
            if position >= element.definition.arity:
                continue
            if isinstance(element.definition.projection[position], ConstProj):
                continue  # the position is pinned: nothing to probe
            attr = f"a{position}"
            if element.has_index_on((attr,)):
                continue
            rows = element.rows_materialized()
            element.indexes().ensure((attr,))
            self.metrics.incr(CACHE_INDEX_BUILDS)
            self.clock.charge("local", self.profile.index_build_per_tuple * rows)

    def _prefetch_companions(self, view_name: str) -> None:
        """Prefetch views grouped with ``view_name`` in the path expression.

        With batching on, all companions needing remote data are shipped
        as **one** round trip (:meth:`RemoteInterface.fetch_many`) — the
        path expression told us they are wanted together, so the latency
        is paid once for the whole group.
        """
        if not self.features.prefetch or not self.features.caching:
            return
        wanted: list[tuple[str, PSJQuery]] = []
        for companion in self.advice_manager.prefetch_candidates(view_name):
            general = self._general_psj_of_view(companion)
            if general is None or self.cache.lookup_exact(general) is not None:
                continue
            logger.debug("prefetch: %s (companion of %s)", companion, view_name)
            wanted.append((companion, general))
        if not wanted:
            return
        if self.features.batching and len(wanted) > 1:
            batch_started = self.clock.now
            try:
                relations = self.rdi.fetch_many([general for _name, general in wanted])
            except RemoteDBMSError:
                return  # prefetching must never fail the query it rode on
            # The batched round trip's cost is shared: each element's
            # ledger carries an equal share of the derivation time.
            per_element = (self.clock.now - batch_started) / len(wanted)
            for (companion, general), relation in zip(wanted, relations):
                try:
                    element = self.cache.store(
                        general, relation, derivation_seconds=per_element
                    )
                except CacheCapacityError:
                    continue
                if self.features.indexing:
                    self._build_indexes(
                        element, self.advice_manager.index_positions(companion)
                    )
                self.metrics.incr(CACHE_PREFETCHES)
            return
        for companion, general in wanted:
            try:
                self._fetch_and_cache(general, view_name=companion)
            except (CacheCapacityError, RemoteDBMSError):
                continue
            self.metrics.incr(CACHE_PREFETCHES)

    def _general_psj_of_view(self, view_name: str) -> PSJQuery | None:
        view = self.advice_manager.view(view_name)
        if view is None:
            return None
        definition = view.definition
        relations = definition.relation_literals()
        comparisons = definition.comparison_literals()
        if len(relations) + len(comparisons) != len(definition.literals):
            return None  # evaluable literals: not prefetchable
        try:
            return psj_from_literals(
                f"{view_name}__general", relations, comparisons, definition.answers
            )
        except TranslationError:
            return None  # externally-bound comparison: not prefetchable
