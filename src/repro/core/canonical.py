"""Deterministic canonicalization of PSJ queries — the semantic cache key.

ROADMAP item 1: syntactically different but equivalent CAQL queries
(reordered conjuncts, renamed variables, ``x>5 ∧ x>3``, constant
spellings ``1`` vs ``1.0``) should hit the same cache elements *before*
the general subsumption machinery runs.  This module rewrites a
:class:`~repro.caql.psj.PSJQuery` into a canonical normal form and
derives a stable, hashable **canonical key** from it:

* **conjunct ordering** — every emitted condition is rendered to a
  string and the condition set is sorted, so conjunct order in the
  source query is irrelevant;
* **interval normal form** — comparison predicates on one equality
  class of columns are folded into at most one lower bound, one upper
  bound, one equality pin, and a set of exclusions per comparability
  kind (``x>5 ∧ x>3`` → ``x>5``; ``x>=5 ∧ x<=5`` → ``x=5``); detected
  contradictions (``x>5 ∧ x<3``, conflicting pins) mark the form
  **unsatisfiable**, which the planner turns into an empty-result fast
  path;
* **constant normalization** — ``==``-equal spellings collapse to one
  canonical spelling under the same ``(type name, repr)`` convention as
  :func:`repro.core.rdi.canonical_bindings` (``1``, ``1.0`` and ``True``
  all select the same rows, so they share a spelling); answer constants
  (:class:`~repro.caql.psj.ConstProj`) are *not* respelled — the fuzzer
  encodes answers type-preservingly, and ``1`` and ``1.0`` are different
  output values;
* **alpha-equivalence** — occurrence tags are renamed positionally
  after choosing the lexicographically least key over the permutations
  of same-``(pred, arity)`` occurrences (capped; beyond the cap a
  deterministic refinement order is used, which may forgo — but never
  falsify — a canonical hit).

Soundness contract: ``canonical_key(a) == canonical_key(b)`` implies the
two queries produce identical answer row sets under
:func:`repro.caql.eval.evaluate_psj` semantics (comparisons evaluate via
:func:`~repro.relational.expressions.holds`, where a type clash is
``False``).  The reverse is deliberately not promised — a missed hit
falls through to subsumption, which is exactly the pre-canonical
behavior.  The equivalent-query mutation fuzzer
(``braid_fuzz.py --profile variants``) carries the correctness argument.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.caql.psj import ConstProj, Occurrence, PSJQuery
from repro.relational.expressions import Col, Comparison, FLIPPED, Lit, holds

#: Exhaustive-permutation budget for alpha-equivalent occurrence
#: ordering.  3–4 same-signature occurrences stay exact; beyond that the
#: deterministic refinement fallback kicks in (sound, possibly lossy).
PERMUTATION_CAP = 720


# -- constants -----------------------------------------------------------------------


def canonical_constant(value: object) -> object:
    """The canonical spelling of a constant's ``==``-equality class.

    Numeric spellings (``bool``/``int``/``float``) that compare equal
    select exactly the same rows, so they collapse to the float spelling
    when it is exact (``1`` → ``1.0``, ``True`` → ``1.0``); integers
    beyond float precision keep their own spelling.  Non-numeric values
    (strings included — ``"1" != 1``) are returned unchanged.
    """
    if isinstance(value, (bool, int, float)):
        try:
            as_float = float(value)
        except (OverflowError, ValueError):
            return value
        if as_float == value:
            return as_float
    return value


def _encode(value: object) -> str:
    """A total-ordered, collision-free rendering of a canonical constant."""
    v = canonical_constant(value)
    return f"{type(v).__name__}!{v!r}"


def _encode_raw(value: object) -> str:
    """Spelling-preserving rendering (answer constants stay distinct)."""
    return f"{type(value).__name__}!{value!r}"


def _kind(value: object) -> str:
    """Comparability kind: values of one kind never raise on comparison."""
    if isinstance(value, (bool, int, float)):
        return "num"
    return type(value).__name__


# -- interval folding ----------------------------------------------------------------


@dataclass
class _Interval:
    """One comparability kind's folded range bounds."""

    lower: tuple[object, bool] | None = None  # (value, strict)
    upper: tuple[object, bool] | None = None


def _fold_lower(interval: _Interval, value: object, strict: bool) -> None:
    """Tighten ``interval``'s lower bound with ``> / >= value``."""
    current = interval.lower
    if (
        current is None
        or holds(value, ">", current[0])
        or (value == current[0] and strict and not current[1])
    ):
        interval.lower = (value, strict)


def _fold_upper(interval: _Interval, value: object, strict: bool) -> None:
    """Tighten ``interval``'s upper bound with ``< / <= value``.

    Module-level on purpose: this is the interval-folding seam the
    planted-bug acceptance test replaces with a conjunct-dropping
    mutant (mirroring PR 5's ``derive_full`` seam).
    """
    current = interval.upper
    if (
        current is None
        or holds(value, "<", current[0])
        or (value == current[0] and strict and not current[1])
    ):
        interval.upper = (value, strict)


@dataclass
class _ClassFacts:
    """Folded constraints for one equality class of columns."""

    columns: list[str] = field(default_factory=list)
    pinned: object | None = None
    has_pin: bool = False
    intervals: dict[str, _Interval] = field(default_factory=dict)
    excluded: list[object] = field(default_factory=list)
    contradictory: bool = False

    def pin(self, value: object) -> None:
        if self.has_pin:
            if value != self.pinned:
                self.contradictory = True
            return
        self.pinned = value
        self.has_pin = True


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, col: str) -> str:
        parent = self._parent.setdefault(col, col)
        if parent == col:
            return col
        root = self.find(parent)
        self._parent[col] = root
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def columns(self):
        return list(self._parent)


# -- the canonical form ---------------------------------------------------------------


@dataclass(frozen=True)
class CanonicalForm:
    """The canonicalizer's output for one PSJ query."""

    #: The normalized expression: canonical occurrence order and tags,
    #: folded conditions with canonical constant spellings.  Evaluates
    #: to the same answers as the input query.
    query: PSJQuery
    #: The stable canonical key — nested tuples of strings only, so
    #: comparison and hashing never hit a cross-type ``TypeError``.
    key: tuple
    #: True when folding proved the query empty.
    unsatisfiable: bool


def canonicalize(query: PSJQuery) -> CanonicalForm:
    """The canonical form of ``query`` (memoized; pure)."""
    try:
        return _canonicalize_cached(query, _spelling(query), _fold_lower, _fold_upper)
    except TypeError:  # an unhashable constant somewhere: compute directly
        return _build(query)


def _spelling(query: PSJQuery) -> tuple[str, ...]:
    """Every constant's exact spelling, for the memo key.

    Queries that compare ``==``-equal can still differ in constant
    *spellings* (``ConstProj(1)`` vs ``ConstProj(1.0)``), and answer
    spellings change the canonical key — so equality alone must not
    share a memo row.
    """
    parts = []
    for condition in query.conditions:
        for operand in (condition.left, condition.right):
            if isinstance(operand, Lit):
                parts.append(_encode_raw(operand.value))
    for entry in query.projection:
        if isinstance(entry, ConstProj):
            parts.append(_encode_raw(entry.value))
    return tuple(parts)


@lru_cache(maxsize=4096)
def _canonicalize_cached(query: PSJQuery, _spelled, _lo, _hi) -> CanonicalForm:
    # ``_spelled`` disambiguates ==-equal queries with different constant
    # spellings; ``_lo``/``_hi`` are the current fold seams, passed only
    # so a monkeypatched seam (the planted-bug test) gets its own rows.
    return _build(query)


def canonical_key(query: PSJQuery) -> tuple:
    """Just the key — what :func:`repro.core.cache.key_of` indexes by."""
    return canonicalize(query).key


def clear_cache() -> None:
    """Drop the memo table (tests that patch the fold seams use this)."""
    _canonicalize_cached.cache_clear()


# -- construction ---------------------------------------------------------------------


def _unsat_form(query: PSJQuery) -> CanonicalForm:
    normalized = query if query.unsatisfiable else replace(query, unsatisfiable=True)
    return CanonicalForm(
        query=normalized,
        key=("unsat", str(query.arity)),
        unsatisfiable=True,
    )


def _build(query: PSJQuery) -> CanonicalForm:
    if query.unsatisfiable:
        return _unsat_form(query)

    facts = _digest(query)
    if facts is None:
        return _unsat_form(query)
    classes, general = facts

    orders = _candidate_orders(query, classes)
    best_key = None
    best_order = None
    for order in orders:
        mapping = {
            query.occurrences[old].tag: f"t{new}" for new, old in enumerate(order)
        }
        key = (
            "q",
            tuple(
                f"{query.occurrences[old].pred}/{query.occurrences[old].arity}"
                for old in order
            ),
            tuple(sorted(_render_conditions(classes, general, mapping))),
            tuple(_render_projection(query, mapping)),
        )
        if best_key is None or key < best_key:
            best_key = key
            best_order = order

    normalized = _normalized_query(query, classes, general, best_order)
    return CanonicalForm(query=normalized, key=best_key, unsatisfiable=False)


def _digest(query: PSJQuery):
    """Fold the condition set into per-class facts + general conditions.

    Returns ``None`` when a contradiction makes the query empty.
    """
    uf = _UnionFind()
    col_lit: list[Comparison] = []
    col_col: list[Comparison] = []
    for condition in query.conditions:
        condition = condition.normalized()
        if isinstance(condition.left, Col) and isinstance(condition.right, Lit):
            uf.find(condition.left.name)
            col_lit.append(condition)
        elif condition.is_col_col():
            if condition.op == "=":
                uf.union(condition.left.name, condition.right.name)
            else:
                uf.find(condition.left.name)
                uf.find(condition.right.name)
                col_col.append(condition)
        # Lit-op-Lit never survives normalization upstream; a degenerate
        # one would have been constant-folded into ``unsatisfiable``.

    classes: dict[str, _ClassFacts] = {}
    for column in uf.columns():
        root = uf.find(column)
        classes.setdefault(root, _ClassFacts()).columns.append(column)

    bounds: dict[str, list[tuple[str, object]]] = {}
    for condition in col_lit:
        root = uf.find(condition.left.name)
        info = classes[root]
        value = condition.right.value
        if condition.op == "=":
            info.pin(value)
        elif condition.op == "!=":
            if not any(value == seen for seen in info.excluded):
                info.excluded.append(value)
        else:
            bounds.setdefault(root, []).append((condition.op, value))

    for root, entries in bounds.items():
        info = classes[root]
        # Canonical digestion order, so folding (which calls ``holds``
        # pairwise) cannot depend on source conjunct order.
        entries.sort(key=lambda e: (e[0], _encode(e[1])))
        for op, value in entries:
            interval = info.intervals.setdefault(_kind(value), _Interval())
            if op == "<":
                _fold_upper(interval, value, True)
            elif op == "<=":
                _fold_upper(interval, value, False)
            elif op == ">":
                _fold_lower(interval, value, True)
            elif op == ">=":
                _fold_lower(interval, value, False)

    for info in classes.values():
        if not _settle(info):
            return None

    general: list[tuple[str, str, str]] = []
    seen_general: set[tuple[str, str, str]] = set()
    for condition in col_col:
        left_root = uf.find(condition.left.name)
        right_root = uf.find(condition.right.name)
        if left_root == right_root:
            if condition.op in ("<", ">", "!="):
                return None  # x < x / x != x: never holds
            continue  # x <= x / x >= x: always holds
        entry = (left_root, condition.op, right_root)
        if entry not in seen_general:
            seen_general.add(entry)
            general.append(entry)
    return classes, general


def _settle(info: _ClassFacts) -> bool:
    """Resolve one class's facts; False when contradictory.

    A pin absorbs every other constraint (each is simply evaluated on
    the pinned value — exactly what execution would do row by row); a
    closed non-strict interval collapses to a pin; exclusions that the
    surviving interval already rules out are dropped as redundant.
    """
    if info.contradictory:
        return False
    if not info.has_pin:
        for interval in info.intervals.values():
            lower, upper = interval.lower, interval.upper
            if lower is None or upper is None:
                continue
            if holds(lower[0], ">", upper[0]):
                return False
            if lower[0] == upper[0]:
                if lower[1] or upper[1]:
                    return False
                info.pin(lower[0])
                break
    if info.has_pin:
        pinned = info.pinned
        for interval in info.intervals.values():
            lower, upper = interval.lower, interval.upper
            if lower is not None and not holds(pinned, ">" if lower[1] else ">=", lower[0]):
                return False
            if upper is not None and not holds(pinned, "<" if upper[1] else "<=", upper[0]):
                return False
        info.intervals.clear()
        if any(pinned == value for value in info.excluded):
            return False
        info.excluded = []
        return True
    kept = []
    for value in info.excluded:
        interval = info.intervals.get(_kind(value))
        if interval is not None:
            lower, upper = interval.lower, interval.upper
            if lower is not None and not holds(value, ">" if lower[1] else ">=", lower[0]):
                continue  # already outside the range: x != v is implied
            if upper is not None and not holds(value, "<" if upper[1] else "<=", upper[0]):
                continue
        kept.append(value)
    info.excluded = kept
    return True


# -- occurrence ordering --------------------------------------------------------------


def _candidate_orders(query: PSJQuery, classes: dict[str, _ClassFacts]):
    """Occurrence orders to try: per-signature permutations, capped."""
    groups: dict[tuple[str, int], list[int]] = {}
    for index, occ in enumerate(query.occurrences):
        groups.setdefault((occ.pred, occ.arity), []).append(index)
    signatures = sorted(groups)

    total = 1
    for signature in signatures:
        for k in range(2, len(groups[signature]) + 1):
            total *= k
        if total > PERMUTATION_CAP:
            break
    if total > PERMUTATION_CAP:
        return [_refined_order(query, signatures, groups, classes)]

    per_group = [itertools.permutations(groups[s]) for s in signatures]
    orders = []
    for combo in itertools.product(*per_group):
        order = [index for group in combo for index in group]
        orders.append(order)
    return orders


def _refined_order(query, signatures, groups, classes) -> list[int]:
    """Deterministic fallback beyond the permutation cap.

    Occurrences are refined within their signature group by a
    tag-erased digest of the constraints touching their columns — not
    guaranteed alpha-minimal, but stable, so identical inputs still map
    to identical keys.
    """
    digests: dict[int, tuple] = {}
    for index, occ in enumerate(query.occurrences):
        prefix = occ.tag + "."
        local: list[str] = []
        for facts in classes.values():
            for col in facts.columns:
                if not col.startswith(prefix):
                    continue
                position = col.split(".c", 1)[1]
                if facts.has_pin:
                    local.append(f"c{position} = {_encode(facts.pinned)}")
                for interval in facts.intervals.values():
                    if interval.lower is not None:
                        op = ">" if interval.lower[1] else ">="
                        local.append(f"c{position} {op} {_encode(interval.lower[0])}")
                    if interval.upper is not None:
                        op = "<" if interval.upper[1] else "<="
                        local.append(f"c{position} {op} {_encode(interval.upper[0])}")
                for value in facts.excluded:
                    local.append(f"c{position} != {_encode(value)}")
        digests[index] = (tuple(sorted(local)), index)
    order: list[int] = []
    for signature in signatures:
        order.extend(sorted(groups[signature], key=digests.__getitem__))
    return order


# -- rendering ------------------------------------------------------------------------


def _map_column(column: str, mapping: dict[str, str]) -> str:
    tag, _, rest = column.partition(".")
    return f"{mapping[tag]}.{rest}"


def _class_members(facts: _ClassFacts, mapping: dict[str, str]) -> list[str]:
    return sorted(_map_column(c, mapping) for c in facts.columns)


def _render_conditions(classes, general, mapping) -> list[str]:
    reps: dict[str, str] = {}  # class root -> representative under mapping
    out: list[str] = []
    for root, facts in classes.items():
        members = _class_members(facts, mapping)
        rep = members[0]
        reps[root] = rep
        for member in members[1:]:
            out.append(f"{rep} = {member}")
        if facts.has_pin:
            out.append(f"{rep} = {_encode(facts.pinned)}")
        for kind in sorted(facts.intervals):
            interval = facts.intervals[kind]
            if interval.lower is not None:
                op = ">" if interval.lower[1] else ">="
                out.append(f"{rep} {op} {_encode(interval.lower[0])}")
            if interval.upper is not None:
                op = "<" if interval.upper[1] else "<="
                out.append(f"{rep} {op} {_encode(interval.upper[0])}")
        for encoded in sorted(_encode(v) for v in facts.excluded):
            out.append(f"{rep} != {encoded}")
    for left_root, op, right_root in general:
        left, right = reps[left_root], reps[right_root]
        if right < left:
            left, op, right = right, FLIPPED[op], left
        out.append(f"{left} {op} {right}")
    return out


def _render_projection(query: PSJQuery, mapping: dict[str, str]) -> list[str]:
    out = []
    for entry in query.projection:
        if isinstance(entry, ConstProj):
            out.append(f"const!{_encode_raw(entry.value)}")
        else:
            out.append(_map_column(entry, mapping))
    return out


# -- the normalized expression --------------------------------------------------------


def _normalized_query(query, classes, general, order) -> PSJQuery:
    mapping = {query.occurrences[old].tag: f"t{new}" for new, old in enumerate(order)}
    occurrences = tuple(
        Occurrence(f"t{new}", query.occurrences[old].pred, query.occurrences[old].arity)
        for new, old in enumerate(order)
    )

    conditions: list[tuple[str, Comparison]] = []
    reps: dict[str, str] = {}
    for root, facts in classes.items():
        members = _class_members(facts, mapping)
        rep = members[0]
        reps[root] = rep
        for member in members[1:]:
            conditions.append((f"{rep} = {member}", Comparison(Col(rep), "=", Col(member))))
        if facts.has_pin:
            value = canonical_constant(facts.pinned)
            conditions.append((f"{rep} = {_encode(value)}", Comparison(Col(rep), "=", Lit(value))))
        for kind in sorted(facts.intervals):
            interval = facts.intervals[kind]
            if interval.lower is not None:
                op = ">" if interval.lower[1] else ">="
                value = canonical_constant(interval.lower[0])
                conditions.append(
                    (f"{rep} {op} {_encode(value)}", Comparison(Col(rep), op, Lit(value)))
                )
            if interval.upper is not None:
                op = "<" if interval.upper[1] else "<="
                value = canonical_constant(interval.upper[0])
                conditions.append(
                    (f"{rep} {op} {_encode(value)}", Comparison(Col(rep), op, Lit(value)))
                )
        for value in facts.excluded:
            value = canonical_constant(value)
            conditions.append(
                (f"{rep} != {_encode(value)}", Comparison(Col(rep), "!=", Lit(value)))
            )
    for left_root, op, right_root in general:
        left, right = reps[left_root], reps[right_root]
        if right < left:
            left, op, right = right, FLIPPED[op], left
        conditions.append((f"{left} {op} {right}", Comparison(Col(left), op, Col(right))))

    conditions.sort(key=lambda pair: pair[0])
    projection = tuple(
        entry if isinstance(entry, ConstProj) else _map_column(entry, mapping)
        for entry in query.projection
    )
    var_columns = tuple(
        (name, tuple(_map_column(c, mapping) for c in cols))
        for name, cols in query.var_columns
    )
    return PSJQuery(
        query.name,
        occurrences,
        tuple(c for _, c in conditions),
        projection,
        var_columns=var_columns,
        unsatisfiable=False,
    )
