"""Local execution engines behind one interface.

The Execution Monitor's combine stage and full-subsumption derivations
are expressed against this small facade so the CMS can run either engine:

* :class:`TupleEngine` — the original tuple-at-a-time operators from
  :mod:`repro.relational.operators` (the semantic reference);
* :class:`ColumnarEngine` — the vectorized kernels from
  :mod:`repro.relational.columnar` with compiled predicates.

Both engines implement the same relational contract — set semantics,
Python-equality join keys, first-occurrence-ordered duplicate
elimination — and the differential fuzzer's engine axis
(``scripts/braid_fuzz.py --engine both``) holds them to it: every fuzz
case must produce tuple-set-identical answers on both engines and the
direct-evaluation oracle.

An engine works on *handles* (its native relation representation).
``ingest`` converts a materialized :class:`Relation` into a handle,
``materialize`` converts a handle back; the tuple engine's handles are
the relations themselves, so both are identities there.
"""

from __future__ import annotations

from repro.caql.eval import result_schema
from repro.caql.psj import ConstProj, PSJQuery
from repro.relational import operators
from repro.relational.columnar import (
    ColumnarBatch,
    hash_join_batch,
    project_entries_batch,
    select_batch,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.core import subsumption

__all__ = ["ColumnarEngine", "TupleEngine", "make_engine"]


class TupleEngine:
    """The tuple-at-a-time reference engine (handles are relations)."""

    name = "tuple"

    def ingest(self, relation: Relation) -> Relation:
        """A relation is already this engine's native handle."""
        return relation

    def materialize(self, handle: Relation) -> Relation:
        """Identity: tuple-engine handles are relations."""
        return handle

    def select(self, handle: Relation, conditions) -> Relation:
        return operators.select(handle, list(conditions))

    def join(
        self, left: Relation, right: Relation, pairs, name: str, conditions=()
    ) -> Relation:
        return operators.join(
            left, right, list(pairs), name=name, conditions=list(conditions)
        )

    def project_entries(self, handle: Relation, entries, schema: Schema) -> Relation:
        rows = (
            tuple(value if kind == "const" else row[value] for kind, value in entries)
            for row in handle
        )
        return Relation(schema, rows)

    def derive_full(
        self, match, query: PSJQuery, prefiltered: Relation | None = None
    ) -> Relation:
        return subsumption.derive_full(match, query, prefiltered=prefiltered)


class ColumnarEngine:
    """The batch engine: columnar handles, compiled predicates."""

    name = "columnar"

    def ingest(self, relation: Relation) -> ColumnarBatch:
        """Pivot a materialized relation into a columnar batch."""
        if isinstance(relation, ColumnarBatch):
            return relation
        return ColumnarBatch.from_relation(relation)

    def materialize(self, handle) -> Relation:
        """A batch handle back as a plain extension."""
        if isinstance(handle, ColumnarBatch):
            return handle.to_relation()
        return handle

    def select(self, handle: ColumnarBatch, conditions) -> ColumnarBatch:
        return select_batch(handle, list(conditions))

    def join(
        self,
        left: ColumnarBatch,
        right: ColumnarBatch,
        pairs,
        name: str,
        conditions=(),
    ) -> ColumnarBatch:
        return hash_join_batch(
            left, right, list(pairs), name=name, conditions=list(conditions)
        )

    def project_entries(
        self, handle: ColumnarBatch, entries, schema: Schema
    ) -> ColumnarBatch:
        return project_entries_batch(handle, list(entries), schema)

    def derive_full(
        self, match, query: PSJQuery, prefiltered: Relation | None = None
    ) -> ColumnarBatch:
        """Batch analogue of :func:`repro.core.subsumption.derive_full`.

        Same contract: ``prefiltered`` rows are already restricted by the
        residual conditions (the index fast path skips re-selection);
        otherwise residuals run here, on the compiled kernel.
        """
        if not match.is_full or match.projection is None:
            raise ValueError("derive_full requires a full match")
        if prefiltered is not None:
            batch = self.ingest(prefiltered)
        else:
            batch = self.ingest(match.element.extension())
            if match.residual_conditions:
                batch = select_batch(batch, list(match.residual_conditions))
        schema = result_schema(query.name, query.arity)
        if not match.projection:
            return ColumnarBatch.from_rows(
                schema, [(True,)] if len(batch) else [], distinct=True
            )
        entries = [
            ("const", entry.value)
            if isinstance(entry, ConstProj)
            else ("col", batch.schema.position(entry))
            for entry in match.projection
        ]
        return project_entries_batch(batch, entries, schema)


def make_engine(name: str):
    """Engine by name (``tuple`` or ``columnar``)."""
    if name == "tuple":
        return TupleEngine()
    if name == "columnar":
        return ColumnarEngine()
    raise ValueError(f"unknown engine {name!r} (expected 'tuple' or 'columnar')")
