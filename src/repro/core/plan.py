"""Query plan structures produced by the QPO (Section 5.3.3).

A plan "consists of a partially ordered set of subqueries where each
subquery is designated for execution by either the Cache Manager or by the
remote DBMS".  Here the partial order has two levels: all **parts** (cache
derivations and at most one remote fetch) are mutually independent — the
Execution Monitor runs them in one parallel region — followed by the
**combine** stage (join + residual conditions + projection) on the
workstation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expressions import Comparison
from repro.caql.psj import PSJQuery
from repro.core.subsumption import SubsumptionMatch


@dataclass(frozen=True)
class CachePart:
    """A component answered from the cache via a subsumption match."""

    match: SubsumptionMatch
    #: Query columns this part must expose to the combine stage.
    columns: tuple[str, ...]

    @property
    def tags(self) -> frozenset[str]:
        """Query occurrence tags this part covers."""
        return self.match.covered_tags


@dataclass(frozen=True)
class BindingSpec:
    """One semijoin binding: a remote join column reduced by cache values.

    The executor runs the cache track first, projects the *distinct* values
    of ``cache_column`` from the produced cache part, and ships them as an
    IN-list on ``remote_column`` — so the server returns only tuples that
    can survive the combine-stage join.
    """

    #: Qualified column in the remote sub-query ("t1.c0").
    remote_column: str
    #: Qualified column a cache part exposes ("t0.c1") — the binding source.
    cache_column: str
    #: Planner estimate of how many distinct values will be shipped.
    estimated_values: float = 0.0


@dataclass(frozen=True)
class RemotePart:
    """A component shipped to the remote DBMS as one DML request."""

    sub_query: PSJQuery
    #: Query columns this part exposes (the sub-query's projection order).
    columns: tuple[str, ...]
    tags: frozenset[str]
    #: Semijoin reduction chosen by the planner: binding sets to extract
    #: from cache parts and ship as IN-lists.  Empty = unreduced fetch.
    bind_columns: tuple[BindingSpec, ...] = ()

    @property
    def semijoin(self) -> bool:
        """True when this fetch is semijoin-reduced by shipped bindings."""
        return bool(self.bind_columns)


PlanPart = CachePart | RemotePart


@dataclass
class QueryPlan:
    """The complete plan for one CAQL query."""

    query: PSJQuery
    #: One of: exact, cache-full, hybrid, remote, unsatisfiable, unit.
    strategy: str
    parts: tuple[PlanPart, ...] = ()
    #: For exact / cache-full strategies: the match to derive from.
    full_match: SubsumptionMatch | None = None
    #: Conditions spanning parts, applied at the combine stage.
    cross_conditions: tuple[Comparison, ...] = ()
    #: Evaluate lazily (only legal when nothing remote is involved).
    lazy: bool = False
    #: Store the result as a cache element afterwards.
    cache_result: bool = True
    #: Advice predicts no further request: store, but evict first.
    expendable: bool = False
    #: Result attribute positions to index after caching (consumer advice).
    index_positions: tuple[int, ...] = ()
    #: Planner estimates, for tests and ablation reporting.
    estimated_local_cost: float = 0.0
    estimated_remote_cost: float = 0.0
    estimated_rows: float = 0.0
    #: Extra PSJ queries to fetch and cache ahead of need (prefetch and
    #: generalization both surface here).
    prefetches: tuple[PSJQuery, ...] = ()
    #: Cache epoch at planning time.  When the cache has moved on by
    #: execution time the executor re-validates every matched element and
    #: raises :class:`~repro.common.errors.StalePlanError` if one is gone.
    epoch: int = -1
    #: Exact strategy only: the hit came from the canonical tier — the
    #: stored definition is an alpha-equivalent variant spelling rather
    #: than structurally identical (metrics: ``cache.canonical_hits``).
    canonical_hit: bool = False
    notes: list[str] = field(default_factory=list)

    @property
    def touches_remote(self) -> bool:
        """True when any part needs the remote DBMS."""
        return any(isinstance(p, RemotePart) for p in self.parts)

    def cache_elements(self):
        """Every cache element this plan reads (full match + cache parts)."""
        elements = []
        if self.full_match is not None:
            elements.append(self.full_match.element)
        for part in self.parts:
            if isinstance(part, CachePart):
                elements.append(part.match.element)
        return elements

    def check_invariants(self) -> None:
        """Audit this plan's structural consistency (cheap, read-only).

        Raises :class:`~repro.common.errors.InvariantViolation` when the
        plan could not possibly execute correctly: an occurrence of the
        query left uncovered by any part, a part claiming a tag the query
        does not have, a missing epoch stamp on a plan that reads the
        cache, a lazy plan that touches the remote DBMS, or a semijoin
        binding whose source column no cache part exposes.
        """
        from repro.common.errors import InvariantViolation

        query_tags = {occ.tag for occ in self.query.occurrences}
        if self.strategy in ("unsatisfiable", "unit"):
            return
        if self.strategy in ("exact", "cache-full"):
            if self.strategy == "cache-full" and self.full_match is None:
                raise InvariantViolation(
                    f"cache-full plan for {self.query.name} has no full match"
                )
            if self.epoch < 0:
                raise InvariantViolation(
                    f"{self.strategy} plan for {self.query.name} was never "
                    "stamped with a cache epoch"
                )
            return
        covered: set[str] = set()
        for part in self.parts:
            if not part.tags <= query_tags:
                raise InvariantViolation(
                    f"plan part covers unknown tags "
                    f"{sorted(part.tags - query_tags)} of {self.query.name}"
                )
            if covered & part.tags:
                raise InvariantViolation(
                    f"tags {sorted(covered & part.tags)} of {self.query.name} "
                    "covered by more than one plan part"
                )
            covered |= part.tags
        missing = query_tags - covered
        if missing:
            raise InvariantViolation(
                f"occurrences {sorted(missing)} of {self.query.name} are "
                f"covered by no part of this {self.strategy} plan"
            )
        if self.lazy and self.touches_remote:
            raise InvariantViolation(
                f"lazy plan for {self.query.name} touches the remote DBMS"
            )
        reads_cache = any(isinstance(p, CachePart) for p in self.parts)
        if reads_cache and self.epoch < 0:
            raise InvariantViolation(
                f"plan for {self.query.name} reads cache parts but was "
                "never stamped with a cache epoch"
            )
        cache_columns = {
            col
            for part in self.parts
            if isinstance(part, CachePart)
            for col in part.columns
        }
        remote_columns = {
            col
            for part in self.parts
            if isinstance(part, RemotePart)
            for col in part.sub_query.all_columns()
        }
        for part in self.parts:
            if isinstance(part, RemotePart):
                for spec in part.bind_columns:
                    if spec.cache_column not in cache_columns:
                        raise InvariantViolation(
                            f"semijoin binding on {spec.remote_column} draws "
                            f"from {spec.cache_column}, which no cache part "
                            "exposes"
                        )
                    if spec.remote_column not in remote_columns:
                        raise InvariantViolation(
                            f"semijoin binding targets {spec.remote_column}, "
                            "which the remote sub-query does not mention"
                        )

    def describe(self) -> str:
        """A readable multi-line rendering of the plan."""
        lines = [f"plan[{self.strategy}] for {self.query.name}"]
        for part in self.parts:
            if isinstance(part, CachePart):
                lines.append(f"  cache: {part.match}")
            else:
                lines.append(f"  remote: {part.sub_query}")
                for spec in part.bind_columns:
                    lines.append(
                        f"    semijoin: {spec.remote_column} IN bindings of "
                        f"{spec.cache_column} (~{spec.estimated_values:.0f} values)"
                    )
        if self.full_match is not None:
            lines.append(f"  derive-from: {self.full_match}")
        if self.lazy:
            lines.append("  lazy evaluation")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
