"""Query plan structures produced by the QPO (Section 5.3.3).

A plan "consists of a partially ordered set of subqueries where each
subquery is designated for execution by either the Cache Manager or by the
remote DBMS".  Here the partial order has two levels: all **parts** (cache
derivations and at most one remote fetch) are mutually independent — the
Execution Monitor runs them in one parallel region — followed by the
**combine** stage (join + residual conditions + projection) on the
workstation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expressions import Comparison
from repro.caql.psj import PSJQuery
from repro.core.subsumption import SubsumptionMatch


@dataclass(frozen=True)
class CachePart:
    """A component answered from the cache via a subsumption match."""

    match: SubsumptionMatch
    #: Query columns this part must expose to the combine stage.
    columns: tuple[str, ...]

    @property
    def tags(self) -> frozenset[str]:
        """Query occurrence tags this part covers."""
        return self.match.covered_tags


@dataclass(frozen=True)
class BindingSpec:
    """One semijoin binding: a remote join column reduced by cache values.

    The executor runs the cache track first, projects the *distinct* values
    of ``cache_column`` from the produced cache part, and ships them as an
    IN-list on ``remote_column`` — so the server returns only tuples that
    can survive the combine-stage join.
    """

    #: Qualified column in the remote sub-query ("t1.c0").
    remote_column: str
    #: Qualified column a cache part exposes ("t0.c1") — the binding source.
    cache_column: str
    #: Planner estimate of how many distinct values will be shipped.
    estimated_values: float = 0.0


@dataclass(frozen=True)
class RemotePart:
    """A component shipped to the remote DBMS as one DML request."""

    sub_query: PSJQuery
    #: Query columns this part exposes (the sub-query's projection order).
    columns: tuple[str, ...]
    tags: frozenset[str]
    #: Semijoin reduction chosen by the planner: binding sets to extract
    #: from cache parts and ship as IN-lists.  Empty = unreduced fetch.
    bind_columns: tuple[BindingSpec, ...] = ()

    @property
    def semijoin(self) -> bool:
        """True when this fetch is semijoin-reduced by shipped bindings."""
        return bool(self.bind_columns)


PlanPart = CachePart | RemotePart


@dataclass
class QueryPlan:
    """The complete plan for one CAQL query."""

    query: PSJQuery
    #: One of: exact, cache-full, hybrid, remote, unsatisfiable, unit.
    strategy: str
    parts: tuple[PlanPart, ...] = ()
    #: For exact / cache-full strategies: the match to derive from.
    full_match: SubsumptionMatch | None = None
    #: Conditions spanning parts, applied at the combine stage.
    cross_conditions: tuple[Comparison, ...] = ()
    #: Evaluate lazily (only legal when nothing remote is involved).
    lazy: bool = False
    #: Store the result as a cache element afterwards.
    cache_result: bool = True
    #: Advice predicts no further request: store, but evict first.
    expendable: bool = False
    #: Result attribute positions to index after caching (consumer advice).
    index_positions: tuple[int, ...] = ()
    #: Planner estimates, for tests and ablation reporting.
    estimated_local_cost: float = 0.0
    estimated_remote_cost: float = 0.0
    estimated_rows: float = 0.0
    #: Extra PSJ queries to fetch and cache ahead of need (prefetch and
    #: generalization both surface here).
    prefetches: tuple[PSJQuery, ...] = ()
    #: Cache epoch at planning time.  When the cache has moved on by
    #: execution time the executor re-validates every matched element and
    #: raises :class:`~repro.common.errors.StalePlanError` if one is gone.
    epoch: int = -1
    notes: list[str] = field(default_factory=list)

    @property
    def touches_remote(self) -> bool:
        """True when any part needs the remote DBMS."""
        return any(isinstance(p, RemotePart) for p in self.parts)

    def cache_elements(self):
        """Every cache element this plan reads (full match + cache parts)."""
        elements = []
        if self.full_match is not None:
            elements.append(self.full_match.element)
        for part in self.parts:
            if isinstance(part, CachePart):
                elements.append(part.match.element)
        return elements

    def describe(self) -> str:
        """A readable multi-line rendering of the plan."""
        lines = [f"plan[{self.strategy}] for {self.query.name}"]
        for part in self.parts:
            if isinstance(part, CachePart):
                lines.append(f"  cache: {part.match}")
            else:
                lines.append(f"  remote: {part.sub_query}")
                for spec in part.bind_columns:
                    lines.append(
                        f"    semijoin: {spec.remote_column} IN bindings of "
                        f"{spec.cache_column} (~{spec.estimated_values:.0f} values)"
                    )
        if self.full_match is not None:
            lines.append(f"  derive-from: {self.full_match}")
        if self.lazy:
            lines.append("  lazy evaluation")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
