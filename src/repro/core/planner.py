"""The Query Planner/Optimizer (QPO) — Sections 5.3.1–5.3.3.

Step 1 — *determine the query to be evaluated*: decide whether to answer
the IE-query as given or a generalization of it (prefetching more data
than needed, amortized over predicted repetitions).

Step 2 — *determine relevant cache elements*: run subsumption over the
cache (delegated to :mod:`repro.core.subsumption`).

Step 3 — *generate the plan*: choose among answering entirely from cache
(exact or derived), a hybrid split (cache parts + one remote request,
executed in parallel), or shipping the whole query to the remote DBMS —
by comparing estimated costs under the session's cost profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.clock import CostProfile
from repro.common.errors import TranslationError
from repro.relational.expressions import Comparison
from repro.relational.statistics import RelationStatistics
from repro.caql.psj import ConstProj, PSJQuery, psj_from_literals
from repro.core.advice_manager import AdviceManager
from repro.core.cache import Cache
from repro.core.canonical import canonicalize
from repro.core.plan import BindingSpec, CachePart, PlanPart, QueryPlan, RemotePart
from repro.core.subsumption import SubsumptionMatch, explain_candidates, find_relevant
from repro.obs.tracer import Tracer


@dataclass
class PlannerFeatures:
    """Which CMS techniques the planner may use (the E1 ablation knobs)."""

    caching: bool = True
    subsumption: bool = True
    #: Canonicalization-first lookup: the cache keys elements by the
    #: semantic canonical form (:mod:`repro.core.canonical`), so variant
    #: spellings of a stored definition exact-hit without subsumption
    #: scoring, and a query whose canonical form is contradictory takes
    #: the empty-result fast path.  Off = structural exact matching only
    #: (the E22 subsumption-only baseline).
    canonical: bool = True
    lazy: bool = True
    prefetch: bool = True
    generalization: bool = True
    indexing: bool = True
    parallel: bool = True
    #: Semijoin-reduce remote fetches: ship the distinct join-column values
    #: a cache part pins (an IN-list) instead of pulling the base relation
    #: unreduced.  Chosen per query by cost, never unconditionally.
    semijoin: bool = True
    #: Run local operators on the columnar batch engine (compiled
    #: predicates, vectorized kernels) instead of tuple-at-a-time.  Same
    #: answers — the differential fuzzer's engine axis proves it — with
    #: cheaper per-tuple local work in the cost model.
    columnar: bool = False


#: Resolves a base-relation name to its remote statistics.
StatsLookup = Callable[[str], RelationStatistics]


class QueryPlanner:
    """Produces a :class:`QueryPlan` for each PSJ query."""

    def __init__(
        self,
        cache: Cache,
        advice: AdviceManager,
        stats_of: StatsLookup,
        profile: CostProfile,
        features: PlannerFeatures | None = None,
        remote_available: Callable[[], bool] | None = None,
        tracer=None,
        backend_of: Callable[[str], tuple[str, CostProfile]] | None = None,
    ):
        self.cache = cache
        self.advice = advice
        self.stats_of = stats_of
        self.profile = profile
        self.features = features if features is not None else PlannerFeatures()
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        #: Resilience hook (circuit breaker): when the remote DBMS is
        #: currently unreachable, the planner keeps cache parts in hybrid
        #: plans instead of shipping the whole query, so a failing remote
        #: part can still degrade to a partial cache-served answer.
        self.remote_available = (
            remote_available if remote_available is not None else (lambda: True)
        )
        #: Federation hook: resolves a base relation to its home backend's
        #: ``(name, CostProfile)``.  ``None`` (the single-backend default)
        #: keeps the original one-profile cost formulas byte-for-byte.
        self.backend_of = backend_of
        #: When set, every produced plan is run through
        #: :meth:`QueryPlan.check_invariants` before it leaves the planner.
        #: Off by default (tests and the fuzzer flip it on).
        self.audit = False

    # -- entry point -------------------------------------------------------------
    def plan(self, query: PSJQuery) -> QueryPlan:
        """Produce a plan for one PSJ query (the QPO's three steps).

        The plan is tagged with the cache epoch at planning time; an
        executor seeing a newer epoch re-validates the matched elements,
        which makes planning safe under multi-session interleaving.
        """
        with self.tracer.span("planner.plan", view=query.name) as span:
            plan = self._plan(query)
            plan.epoch = self.cache.epoch
            if self.audit:
                plan.check_invariants()
            if self.tracer.enabled:
                self._trace_decision(span, query, plan)
            return plan

    def _trace_decision(self, span, query: PSJQuery, plan: QueryPlan) -> None:
        """Record the planner's full rationale on its span (tracing only).

        The subsumption probe is replayed with rejection recording
        (:func:`explain_candidates`) — pure bookkeeping over an unchanged
        cache, so it cannot perturb the plan; the cost is paid only when a
        real tracer is attached.
        """
        span.set("strategy", plan.strategy)
        span.set("lazy", plan.lazy)
        span.set("cache_result", plan.cache_result)
        span.set("expendable", plan.expendable)
        span.set("epoch", plan.epoch)
        span.set("notes", list(plan.notes))
        span.set(
            "parts",
            [
                f"cache:{p.match.element.element_id}"
                if isinstance(p, CachePart)
                else f"remote:{p.sub_query.name}"
                + ("+semijoin" if p.bind_columns else "")
                for p in plan.parts
            ],
        )
        if plan.prefetches:
            span.set("prefetches", [p.name for p in plan.prefetches])
        span.set("estimated_local_cost", plan.estimated_local_cost)
        span.set("estimated_remote_cost", plan.estimated_remote_cost)
        span.set("remote_available", self.remote_available())
        if self.features.caching and self.features.subsumption:
            for report in explain_candidates(self.cache, query):
                if report.matched:
                    best = report.matches[0]
                    span.event(
                        "subsume.match",
                        element=report.element_id,
                        view=report.view_name,
                        full=any(m.is_full for m in report.matches),
                        covered=sorted(best.covered_tags),
                        residual=len(best.residual_conditions),
                    )
                else:
                    span.event(
                        "subsume.reject",
                        element=report.element_id,
                        view=report.view_name,
                        reasons=list(report.rejections),
                    )

    def _plan(self, query: PSJQuery) -> QueryPlan:
        if query.unsatisfiable:
            return QueryPlan(query, "unsatisfiable", cache_result=False)
        if self.features.canonical and canonicalize(query).unsatisfiable:
            # Interval folding proved the condition set contradictory
            # (e.g. ``x>5 ∧ x<3``): answer empty without touching the
            # cache or the remote DBMS.
            return QueryPlan(
                query,
                "unsatisfiable",
                cache_result=False,
                notes=["canonical form is unsatisfiable"],
            )
        if not query.occurrences:
            return QueryPlan(query, "unit", cache_result=False)

        view_name = query.name
        # Results are stored whenever caching is on; advice that predicts
        # no further request downgrades the element to *expendable* (first
        # in line for eviction) rather than refusing storage — future
        # sessions may still profit from it.
        cache_result = self.features.caching
        expendable = not self.advice.should_cache_result(view_name)
        index_positions = (
            self.advice.index_positions(view_name) if self.features.indexing else ()
        )

        # -- step 2 first: an exact or derived cache answer needs no step 1.
        if self.features.caching:
            exact = self.cache.lookup_exact(query)
            canonical_hit = False
            if exact is not None:
                # The cache indexes by canonical key; when the stored
                # definition is not structurally identical this is a
                # **canonical hit** — a variant spelling served without
                # subsumption scoring.
                canonical_hit = (
                    exact.definition.canonical_key() != query.canonical_key()
                )
                if canonical_hit and not self.features.canonical:
                    exact = None  # ablation: structural exact matching only
            if exact is not None:
                if canonical_hit:
                    exact_notes = [
                        "canonical hit: variant spelling of "
                        f"{exact.element_id} ({exact.view_name})"
                    ]
                else:
                    exact_notes = ["exact-match result reuse"]
                if exact.kind == "intermediate":
                    exact_notes.append(
                        f"reuses intermediate {exact.element_id} "
                        f"({exact.operator or 'unknown-op'}, depth {exact.depth})"
                    )
                return QueryPlan(
                    query,
                    "exact",
                    cache_result=False,  # already cached
                    lazy=False,
                    notes=exact_notes,
                    canonical_hit=canonical_hit,
                )
            if self.features.subsumption:
                matches = find_relevant(self.cache, query)
            else:
                matches = []
            full = next((m for m in matches if m.is_full), None)
            if full is not None:
                lazy = (
                    self.features.lazy
                    and self.advice.prefers_lazy(view_name)
                )
                return QueryPlan(
                    query,
                    "cache-full",
                    full_match=full,
                    lazy=lazy,
                    cache_result=cache_result,
                    expendable=expendable,
                    index_positions=index_positions,
                    estimated_local_cost=self._derive_cost(full),
                    notes=[f"subsumption hit: derived from {full.element.element_id}"]
                    + self._intermediate_notes([full]),
                )
        else:
            matches = []

        # -- step 1: generalization decision (only when remote work looms).
        prefetches: list[PSJQuery] = []
        notes: list[str] = []
        if (
            self.features.generalization
            and self.features.caching
            and self.advice.should_generalize(view_name)
        ):
            general = self.generalization_of(query)
            if general is not None and self.cache.lookup_exact(general) is None:
                prefetches.append(general)
                notes.append(f"generalize: fetch {general.name} unconstrained")

        # -- step 3: hybrid vs all-remote.
        chosen = self._choose_parts(query, matches)
        notes.extend(self._intermediate_notes(chosen))
        plan = self._assemble(query, chosen, notes)
        plan.cache_result = cache_result
        plan.expendable = expendable
        plan.index_positions = index_positions
        plan.prefetches = tuple(prefetches)
        return plan

    @staticmethod
    def _intermediate_notes(matches) -> list[str]:
        """Plan notes for every chosen match that subsumes against an
        operator-level intermediate (observability: ``explain`` and trace
        spans surface which lineage the plan rode on)."""
        return [
            f"reuses intermediate {m.element.element_id} "
            f"({m.element.operator or 'unknown-op'}, depth {m.element.depth})"
            for m in matches
            if m.element.kind == "intermediate"
        ]

    # -- step 1 helpers -----------------------------------------------------------
    def generalization_of(self, query: PSJQuery) -> PSJQuery | None:
        """The generalized query: the advice view's own (uninstantiated)
        definition, which subsumes every instance the IE will send."""
        view = self.advice.view(query.name)
        if view is None:
            return None
        definition = view.definition
        relations = definition.relation_literals()
        comparisons = definition.comparison_literals()
        if len(relations) + len(comparisons) != len(definition.literals):
            return None  # evaluable literals: exact-match only (Section 5.3.2)
        try:
            return psj_from_literals(
                f"{definition.name}__general",
                relations,
                comparisons,
                definition.answers,
            )
        except TranslationError:
            # A comparison in the view references a variable bound outside
            # the run (legal in an instantiated IE-query, where it arrives
            # as a constant): the uninstantiated form is not a well-formed
            # query, so this view cannot be generalized.
            return None

    # -- step 3: part selection ------------------------------------------------------
    def _choose_parts(
        self, query: PSJQuery, matches: list[SubsumptionMatch]
    ) -> list[SubsumptionMatch]:
        """Greedy non-overlapping selection of partial matches by coverage.

        Overlapping candidates (several elements able to cover the same
        occurrence) are resolved in favour of wider coverage with fewer
        residual conditions — the paper's E101/E102 vs E103 discussion.
        """
        chosen: list[SubsumptionMatch] = []
        covered: set[str] = set()
        for match in matches:  # already sorted: fuller first
            if match.covered_tags & covered:
                continue
            if not self._part_columns_available(query, match):
                continue
            chosen.append(match)
            covered |= match.covered_tags
        return chosen

    def _part_columns_available(self, query: PSJQuery, match: SubsumptionMatch) -> bool:
        available = match.available()
        for col in self._needed_columns(query, match.covered_tags):
            if col not in available:
                return False
        return True

    def _needed_columns(self, query: PSJQuery, tags: frozenset[str]) -> list[str]:
        """Query columns a part must expose: projection columns plus the
        covered side of cross-part conditions."""
        prefixes = tuple(tag + "." for tag in tags)
        needed: list[str] = []

        def want(col: str) -> None:
            if col.startswith(prefixes) and col not in needed:
                needed.append(col)

        for entry in query.projection:
            if not isinstance(entry, ConstProj):
                want(entry)
        for condition in query.conditions:
            cols = condition.columns()
            inside = {c for c in cols if c.startswith(prefixes)}
            if inside and inside != cols:
                for col in inside:
                    want(col)
        return needed

    def _assemble(
        self, query: PSJQuery, chosen: list[SubsumptionMatch], notes: list[str]
    ) -> QueryPlan:
        all_tags = {occ.tag for occ in query.occurrences}
        covered = set()
        for match in chosen:
            covered |= match.covered_tags
        uncovered = all_tags - covered

        parts: list[PlanPart] = []
        for match in chosen:
            columns = tuple(self._needed_columns(query, match.covered_tags))
            parts.append(CachePart(match=match, columns=columns))

        remote_cost = 0.0
        local_cost = sum(self._derive_cost(m) for m in chosen)
        semijoined = False
        if uncovered:
            sub = self._remote_sub_query(query, frozenset(uncovered))
            remote_part = RemotePart(
                sub_query=sub,
                columns=tuple(str(p) for p in sub.projection),
                tags=frozenset(uncovered),
            )
            remote_cost = self._remote_cost(sub)

            # Semijoin reduction: if a cache part pins a join column, it
            # may be cheaper to run the cache track first and ship its
            # distinct binding values than to pull the sub-query unreduced.
            # The reduced fetch is sequential (bindings must exist before
            # the request), so it competes against the *parallel* hybrid.
            if chosen and self.features.semijoin:
                specs = self._binding_candidates(query, chosen, frozenset(uncovered))
                if specs:
                    reduced_cost = self._semijoin_cost(sub, specs)
                    unreduced_hybrid = (
                        max(remote_cost, local_cost)
                        if self.features.parallel
                        else remote_cost + local_cost
                    )
                    if local_cost + reduced_cost < unreduced_hybrid:
                        remote_part = RemotePart(
                            sub_query=sub,
                            columns=remote_part.columns,
                            tags=remote_part.tags,
                            bind_columns=tuple(specs),
                        )
                        remote_cost = reduced_cost
                        semijoined = True
                        for spec in specs:
                            notes = notes + [
                                f"semijoin: ship bindings of {spec.cache_column} "
                                f"as {spec.remote_column} IN-list "
                                f"(~{spec.estimated_values:.0f} values)"
                            ]
                    else:
                        notes = notes + [
                            "semijoin rejected: shipped bindings dearer than "
                            "the unreduced parallel fetch"
                        ]
            parts.append(remote_part)

        # Compare the hybrid plan against shipping the whole query.  With
        # the circuit breaker open, keep the cache parts: they are the raw
        # material for a degraded answer if the remote part fails again.
        if chosen and uncovered and not self.remote_available():
            notes = notes + ["remote unavailable: keeping cache parts for degradation"]
        elif chosen and uncovered:
            whole_remote = self._remote_cost(query)
            hybrid = (
                remote_cost + local_cost
                if semijoined or not self.features.parallel
                else max(remote_cost, local_cost)
            )
            if whole_remote < hybrid:
                sub = query
                parts = [
                    RemotePart(
                        sub_query=query,
                        columns=tuple(
                            str(p) for p in query.projection if not isinstance(p, ConstProj)
                        ),
                        tags=frozenset(all_tags),
                    )
                ]
                notes = notes + ["whole-query shipping beat the hybrid split"]
                return QueryPlan(
                    query,
                    "remote",
                    parts=tuple(parts),
                    estimated_remote_cost=whole_remote,
                    notes=notes,
                )

        cross = tuple(self._cross_conditions(query, parts))
        strategy = "remote" if not chosen else "hybrid"
        return QueryPlan(
            query,
            strategy,
            parts=tuple(parts),
            cross_conditions=cross,
            estimated_local_cost=local_cost,
            estimated_remote_cost=remote_cost,
            estimated_rows=self.estimate_rows(query),
            notes=notes,
        )

    def _cross_conditions(
        self, query: PSJQuery, parts: list[PlanPart]
    ) -> list[Comparison]:
        """Conditions spanning more than one part (applied at combine)."""
        part_prefixes = [
            tuple(tag + "." for tag in part.tags) for part in parts
        ]

        def part_of(col: str) -> int | None:
            for index, prefixes in enumerate(part_prefixes):
                if col.startswith(prefixes):
                    return index
            return None

        out = []
        for condition in query.conditions:
            cols = condition.columns()
            if not cols:
                continue
            owners = {part_of(c) for c in cols}
            if len(owners) > 1:
                out.append(condition)
        return out

    def _remote_sub_query(self, query: PSJQuery, tags: frozenset[str]) -> PSJQuery:
        """The uncovered component as a self-contained PSJ query."""
        prefixes = tuple(tag + "." for tag in tags)
        occurrences = tuple(o for o in query.occurrences if o.tag in tags)
        conditions = tuple(
            c
            for c in query.conditions
            if c.columns() and all(col.startswith(prefixes) for col in c.columns())
        )
        projection = tuple(self._needed_columns(query, tags))
        return PSJQuery(
            f"{query.name}__rest",
            occurrences,
            conditions,
            projection,
        )

    # -- semijoin reduction -------------------------------------------------------------
    def _binding_candidates(
        self,
        query: PSJQuery,
        chosen: list[SubsumptionMatch],
        uncovered: frozenset[str],
    ) -> list[BindingSpec]:
        """Cross-part equality joins usable as shipped binding sets.

        A candidate needs an equality condition with one side exposed by a
        chosen cache part and the other side inside the uncovered (remote)
        component.  Each remote column is bound at most once.
        """
        uncovered_prefixes = tuple(tag + "." for tag in uncovered)
        exposed: dict[str, SubsumptionMatch] = {}
        for match in chosen:
            for col in self._needed_columns(query, match.covered_tags):
                exposed.setdefault(col, match)

        specs: list[BindingSpec] = []
        bound: set[str] = set()
        for condition in query.conditions:
            if condition.op != "=" or not condition.is_col_col():
                continue
            left, right = condition.left.name, condition.right.name
            for remote_col, cache_col in ((left, right), (right, left)):
                if not remote_col.startswith(uncovered_prefixes):
                    continue
                if cache_col.startswith(uncovered_prefixes):
                    continue
                source = exposed.get(cache_col)
                if source is None or remote_col in bound:
                    continue
                specs.append(
                    BindingSpec(
                        remote_column=remote_col,
                        cache_column=cache_col,
                        estimated_values=self._estimate_bindings(query, cache_col, source),
                    )
                )
                bound.add(remote_col)
                break
        return specs

    def _estimate_bindings(
        self, query: PSJQuery, cache_col: str, source: SubsumptionMatch
    ) -> float:
        """How many distinct binding values the cache part will yield.

        Bounded above by the element's materialized rows, by the domain
        size of the underlying remote attribute, and by the query's own
        selection estimate on the covered occurrence — residual conditions
        the cache part applies (a tighter range, an equality pin) shrink
        the binding set below the element's size, and pricing that in is
        what lets the planner choose semijoin for highly selective cache
        parts (whose binding sets may even turn out empty, short-circuiting
        the remote fetch entirely).
        """
        domain = self._distinct_of(query, cache_col)
        tag, _ = _split(cache_col)
        stats = self.stats_of(query.occurrence(tag).pred)
        local = query.column_conditions(tag)
        renamed = [
            c.rename_columns({col: _position_attr(col) for col in c.columns()})
            for c in local
        ]
        filtered = max(_positional_stats(stats).estimate_selection(renamed), 0.0)
        rows = float(source.element.rows_materialized())
        if rows <= 0:  # generator-backed element: fall back to the domain
            rows = domain
        return min(rows, filtered, domain)

    def _semijoin_cost(self, sub: PSJQuery, specs: list[BindingSpec]) -> float:
        """Simulated seconds of the semijoin-reduced remote fetch.

        Server touch work is kept at the unreduced estimate (conservative);
        the win must come from shipping fewer result tuples, and the
        shipped IN-list is charged as uplink so the reduction stays honest.
        """
        shipped = self.estimate_rows(sub)
        bindings = 0.0
        for spec in specs:
            domain = self._distinct_of(sub, spec.remote_column)
            if domain > 0:
                shipped *= min(1.0, spec.estimated_values / domain)
            bindings += spec.estimated_values
        latency, server, wire = self._remote_terms(sub)
        return (
            latency
            + server
            + wire.transfer_per_tuple * shipped
            + wire.uplink_per_value * bindings
        )

    def _distinct_of(self, query: PSJQuery, qualified: str) -> float:
        """Distinct-value estimate for a qualified query column."""
        tag, position = _split(qualified)
        stats = self.stats_of(query.occurrence(tag).pred)
        positional = _positional_stats(stats)
        attr = positional.attributes.get(f"a{position}")
        if attr is None or attr.distinct <= 0:
            return max(float(stats.cardinality), 1.0)
        return float(attr.distinct)

    # -- cost model ---------------------------------------------------------------------
    def estimate_rows(self, psj: PSJQuery) -> float:
        """Rough output-cardinality estimate (uniformity + independence)."""
        rows = 1.0
        for occ in psj.occurrences:
            stats = self.stats_of(occ.pred)
            local = psj.column_conditions(occ.tag)
            renamed = [
                c.rename_columns({col: _position_attr(col) for col in c.columns()})
                for c in local
            ]
            positional = _positional_stats(stats)
            rows *= max(positional.estimate_selection(renamed), 0.0)
        # One join-selectivity factor per cross-occurrence equality.
        for condition in psj.conditions:
            if condition.op == "=" and condition.is_col_col():
                left_tag, _ = _split(condition.left.name)
                right_tag, _ = _split(condition.right.name)
                if left_tag != right_tag:
                    rows *= 0.1
        return max(rows, 0.0)

    def _remote_cost(self, psj: PSJQuery) -> float:
        shipped = self.estimate_rows(psj)
        latency, server, wire = self._remote_terms(psj)
        return latency + server + wire.transfer_per_tuple * shipped

    def _remote_terms(self, psj: PSJQuery) -> tuple[float, float, CostProfile]:
        """Latency and server-work terms of a remote fetch, plus the profile
        governing its wire rates.

        Single-backend (no :attr:`backend_of` hook): one round trip and one
        profile — exactly the original formulas.  Federated: a sub-query
        spanning several backends pays each distinct backend's round-trip
        latency, server work is rated per occurrence by its home backend,
        and the wire rates are the worst (most expensive) profile involved
        — conservative, since the gather ships every part over its own
        link.
        """
        if self.backend_of is None:
            touched = sum(
                self.stats_of(occ.pred).cardinality for occ in psj.occurrences
            )
            return (
                self.profile.remote_latency,
                self.profile.server_per_tuple * touched,
                self.profile,
            )
        profiles: dict[str, CostProfile] = {}
        server = 0.0
        for occ in psj.occurrences:
            name, profile = self.backend_of(occ.pred)
            profiles.setdefault(name, profile)
            server += profile.server_per_tuple * self.stats_of(occ.pred).cardinality
        if not profiles:
            return self.profile.remote_latency, 0.0, self.profile
        latency = sum(p.remote_latency for p in profiles.values())
        wire = max(
            profiles.values(),
            key=lambda p: (p.transfer_per_tuple, p.uplink_per_value),
        )
        return latency, server, wire

    def _derive_cost(self, match: SubsumptionMatch) -> float:
        rows = match.element.rows_materialized()
        factor = self.profile.columnar_tuple_factor if self.features.columnar else 1.0
        return self.profile.cache_per_tuple * factor * (rows + 1)


def _split(col: str) -> tuple[str, int]:
    from repro.caql.psj import parse_column

    return parse_column(col)


def _position_attr(col: str) -> str:
    _tag, position = _split(col)
    return f"a{position}"


def _positional_stats(stats: RelationStatistics) -> RelationStatistics:
    """Statistics re-keyed to positional attribute names ``a0..``.

    Remote statistics are keyed by real attribute names; PSJ conditions use
    positions.  The remote schema's attribute order gives the mapping —
    but statistics objects do not carry the schema, so this helper re-keys
    by enumeration order, which :class:`RelationStatistics.from_relation`
    preserves (dicts are ordered).
    """
    out = RelationStatistics(cardinality=stats.cardinality)
    for index, (_name, attr) in enumerate(stats.attributes.items()):
        out.attributes[f"a{index}"] = attr
    return out
