"""The Execution Monitor (Section 5, Figure 5).

"The Execution Monitor coordinates the execution of the subqueries
according to the order specified by the QPO.  Subqueries to the remote
DBMS can be executed in parallel with the subqueries to the Cache
Manager."

Execution charges simulated time: remote work lands on the ``remote``
clock track (inside the RDI/server), cache-side work on the ``local``
track; a plan with both runs them inside one parallel region so the
response time is the maximum, not the sum (Section 5.3.3).

Results are returned to the IE as a :class:`ResultStream` — "the CMS
returns the result for the query using a stream" (Section 3) — which wraps
either an extension (eager) or a generator (lazy).
"""

from __future__ import annotations

from typing import Iterator

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import CacheCapacityError, PlanningError, StalePlanError
from repro.common.metrics import (
    CACHE_TUPLES_PROCESSED,
    EAGER_TUPLES_PRODUCED,
    LAZY_TUPLES_PRODUCED,
    SERVER_SHARED_SUBPLANS,
    Metrics,
)
from repro.relational.columnar import ColumnarBatch
from repro.relational.expressions import Comparison
from repro.relational.generator import GeneratorRelation
from repro.relational.operators import join, select
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.caql.eval import result_schema
from repro.caql.psj import ConstProj, PSJQuery
from repro.core.cache import Cache
from repro.core.engine import make_engine
from repro.core.plan import CachePart, QueryPlan, RemotePart
from repro.core.rdi import RemoteInterface
from repro.obs.tracer import Tracer
from repro.core.subsumption import (
    SubsumptionMatch,
    _rename_condition,
    derive_full,
    derive_full_lazy,
    derive_part,
)

#: What the executor may hand back to the CMS: the tuple engine produces
#: extensions or generators, the columnar engine produces batches.
LocalResult = Relation | GeneratorRelation | ColumnarBatch


class ResultStream:
    """The IE-facing result: tuples on demand, from cache or extension."""

    def __init__(
        self,
        relation: LocalResult,
        name: str,
        degraded: bool = False,
    ):
        self._relation = relation
        self.name = name
        #: True when the answer was served from a stale archive copy or a
        #: partial cache derivation because the remote DBMS was
        #: unreachable — correct as of some earlier point, possibly not
        #: fresh or complete.
        self.degraded = degraded
        self._iterator: Iterator[tuple] | None = None

    @property
    def lazy(self) -> bool:
        """True when backed by a generator (tuples computed on demand)."""
        return isinstance(self._relation, GeneratorRelation)

    @property
    def schema(self) -> Schema:
        """The result's schema (positional attributes)."""
        return self._relation.schema

    def next(self) -> tuple | None:
        """The next solution, or None when exhausted (single-solution
        consumption — the Prolog-style interface)."""
        if self._iterator is None:
            self._iterator = iter(self._relation)
        return next(self._iterator, None)

    def __iter__(self) -> Iterator[tuple]:
        yield from self._relation

    def fetch_all(self) -> list[tuple]:
        """All solutions (set-at-a-time consumption)."""
        if isinstance(self._relation, GeneratorRelation):
            return self._relation.to_extension().rows
        return self._relation.rows

    def as_relation(self) -> Relation:
        """The full result as an extension (drains a generator)."""
        if isinstance(self._relation, GeneratorRelation):
            return self._relation.to_extension()
        if isinstance(self._relation, ColumnarBatch):
            return self._relation.to_relation()
        return self._relation

    def check_invariants(self) -> None:
        """Audit the stream's internal consistency (cheap, read-only).

        Raises :class:`~repro.common.errors.InvariantViolation` when the
        produced rows violate set semantics or the schema arity, or when a
        drained generator still yields tuples (the drain-once contract:
        after exhaustion the memo *is* the extension and iteration must
        replay it exactly, producing nothing new).
        """
        from repro.common.errors import InvariantViolation

        if isinstance(self._relation, ColumnarBatch):
            # Batch consistency (column count, raggedness, distinctness) is
            # the batch's own audit; rows are tuples by construction.
            self._relation.check_invariants(self.name)
            return
        arity = self._relation.schema.arity
        if isinstance(self._relation, GeneratorRelation):
            memo = self._relation._memo
        else:
            memo = self._relation
        if len(memo._rows) != len(memo._row_set):
            raise InvariantViolation(
                f"stream {self.name}: {len(memo._rows)} rows in order but "
                f"{len(memo._row_set)} distinct — duplicate production"
            )
        for row in memo._rows:
            if not isinstance(row, tuple):
                raise InvariantViolation(
                    f"stream {self.name}: produced a non-tuple row {row!r}"
                )
            if len(row) != arity:
                raise InvariantViolation(
                    f"stream {self.name}: row {row!r} has arity {len(row)}, "
                    f"schema says {arity}"
                )
        if isinstance(self._relation, GeneratorRelation) and self._relation.exhausted:
            before = self._relation.produced_count
            replayed = sum(1 for _ in self._relation)
            if self._relation.produced_count != before:
                raise InvariantViolation(
                    f"stream {self.name}: drained generator produced "
                    f"{self._relation.produced_count - before} tuples after "
                    "exhaustion"
                )
            if replayed != before:
                raise InvariantViolation(
                    f"stream {self.name}: drained generator replayed "
                    f"{replayed} of {before} memoized tuples"
                )


class ExecutionMonitor:
    """Executes query plans, charging simulated costs."""

    def __init__(
        self,
        cache: Cache,
        rdi: RemoteInterface,
        clock: SimClock,
        profile: CostProfile,
        metrics: Metrics,
        parallel: bool = True,
        should_index=None,
        pin_streams: bool = False,
        tracer=None,
        batch_remote: bool = True,
        engine: str = "tuple",
        cache_intermediates: bool = False,
        subplan_registry=None,
    ):
        self.cache = cache
        self.rdi = rdi
        self.clock = clock
        self.profile = profile
        self.metrics = metrics
        self.parallel = parallel
        #: The local execution engine (tuple-at-a-time or columnar batch).
        self.engine = make_engine(engine)
        #: Per-tuple local work is cheaper on the batch engine; the same
        #: factor the planner's cost model applies (CostProfile).
        self._local_cost_factor = (
            profile.columnar_tuple_factor if self.engine.name == "columnar" else 1.0
        )
        #: Ship independently-needed remote parts as one batched round trip.
        self.batch_remote = batch_remote
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        #: Callback: should derivations for this view name auto-index the
        #: matched element's probe attributes?  (Consumer-annotation
        #: advice; Section 5.3.3's "index E12 on the third attribute".)
        self.should_index = should_index if should_index is not None else (lambda _name: False)
        #: Hold a pin on the backing element for the lifetime of a lazy
        #: result stream (released when the stream drains).  Enabled by the
        #: multi-session server, whose drain phase guarantees every stream
        #: is consumed; left off for direct single-session use, where the
        #: IE may abandon a stream and the pin would block eviction forever.
        self.pin_streams = pin_streams
        #: Register operator-level results (remote plan parts, derived
        #: cache subsets, semijoin-reduced fetches) as cache elements with
        #: derivation lineage at materialization time.
        self.cache_intermediates = cache_intermediates
        #: The server's in-flight shared-subplan registry (MQO), or None.
        #: Consulted before every *unreduced* remote part fetch; a hit
        #: reuses another session's identical round trip.
        self.subplan_registry = subplan_registry

    # -- cost helpers ----------------------------------------------------------------
    def _charge_local(self, tuples: int) -> None:
        self.metrics.incr(CACHE_TUPLES_PROCESSED, tuples)
        self.clock.charge(
            "local",
            self.profile.cache_per_tuple * self._local_cost_factor * tuples,
        )

    # -- execution ---------------------------------------------------------------------
    def execute(self, plan: QueryPlan) -> LocalResult:
        """Run a query plan; returns a relation, generator, or batch.

        Every cache element the plan reads is pinned for the duration of
        the call (and, for lazy results with :attr:`pin_streams`, for the
        stream's lifetime), so a concurrent session's replacement pass can
        never reclaim an element mid-execution.  A plan whose elements were
        invalidated since planning raises :class:`StalePlanError` so the
        caller can replan against the current cache state.
        """
        elements = plan.cache_elements()
        if plan.epoch >= 0 and plan.epoch != self.cache.epoch:
            for element in elements:
                if not self.cache.validate(element):
                    raise StalePlanError(
                        f"plan for {plan.query.name} references retired cache "
                        f"element {element.element_id}"
                    )
        for element in elements:
            self.cache.pin(element)
        try:
            with self.tracer.span(
                "executor.execute",
                view=plan.query.name,
                strategy=plan.strategy,
                lazy=plan.lazy,
            ):
                return self._dispatch(plan)
        finally:
            for element in elements:
                self.cache.unpin(element)

    def _dispatch(self, plan: QueryPlan) -> LocalResult:
        strategy = plan.strategy
        if strategy == "unsatisfiable":
            return Relation(result_schema(plan.query.name, plan.query.arity))
        if strategy == "unit":
            return self._unit_result(plan.query)
        if strategy == "exact":
            return self._execute_exact(plan)
        if strategy == "cache-full":
            return self._execute_cache_full(plan)
        if strategy in ("hybrid", "remote"):
            return self._execute_parts(plan)
        raise PlanningError(f"unknown plan strategy: {strategy}")

    def _pin_for_stream(self, element, relation) -> None:
        """Keep ``element`` pinned until the lazy ``relation`` drains."""
        if not self.pin_streams:
            return
        if not isinstance(relation, GeneratorRelation) or relation.exhausted:
            return
        self.cache.pin(element)
        previous = relation.on_exhausted

        def release() -> None:
            self.cache.unpin(element)
            if previous is not None:
                previous()

        relation.on_exhausted = release

    def _unit_result(self, query: PSJQuery) -> Relation:
        schema = result_schema(query.name, query.arity)
        row = tuple(
            entry.value if isinstance(entry, ConstProj) else None
            for entry in query.projection
        )
        return Relation(schema, [row] if query.projection else [(True,)])

    def _execute_exact(self, plan: QueryPlan) -> Relation | GeneratorRelation:
        element = self.cache.lookup_exact(plan.query)
        if element is None:
            raise StalePlanError("exact plan but the element vanished")
        self.cache.touch(element)
        self.cache.note_hit(element)
        self.cache.credit_saving(element)
        self._charge_local(element.rows_materialized())
        self._pin_for_stream(element, element.relation)
        return element.relation

    def _execute_cache_full(self, plan: QueryPlan) -> LocalResult:
        match = plan.full_match
        if match is None:
            raise PlanningError("cache-full plan without a match")
        self.cache.touch(match.element)
        self.cache.note_hit(match.element)
        self.cache.credit_saving(match.element)
        if plan.lazy:
            gen = derive_full_lazy(match, plan.query)
            gen.on_produce = self._on_lazy_tuple
            self._pin_for_stream(match.element, gen)
            return gen
        result, touched = self._derive_full_indexed(match, plan.query)
        self._charge_local(touched + len(result))
        self.metrics.incr(EAGER_TUPLES_PRODUCED, len(result))
        return result

    def _derive_full_indexed(self, match, query: PSJQuery) -> tuple[LocalResult, int]:
        """derive_full, using a hash index for equality residuals when one
        exists on the element (Section 5.4: hash indices speed up joins and
        some selections).  Returns the result and the number of element
        rows actually touched (an index probe touches only its bucket)."""
        element = match.element
        equalities: list[tuple[str, object, Comparison]] = []
        rest: list[Comparison] = []
        for condition in match.residual_conditions:
            norm = condition.normalized()
            if norm.op == "=" and norm.is_col_const():
                equalities.append((norm.left.name, norm.right.value, condition))
            else:
                rest.append(condition)
        if equalities and not element.is_generator:
            by_attr = {attr: value for attr, value, _cond in equalities}
            index = element.indexes().find_covering(set(by_attr))
            if index is None and self.should_index(query.name):
                # Consumer-annotated view: build the index the advice asked
                # for, on the element actually serving the probes.
                attrs = tuple(sorted(by_attr))
                element.indexes().ensure(attrs)
                from repro.common.metrics import CACHE_INDEX_BUILDS

                self.metrics.incr(CACHE_INDEX_BUILDS)
                self.clock.charge(
                    "local",
                    self.profile.index_build_per_tuple * element.rows_materialized(),
                )
                index = element.indexes().find_covering(set(by_attr))
            if index is not None:
                key = tuple(by_attr[a] for a in index.attributes)
                rows = index.lookup(key)
                residual = rest + [
                    cond
                    for attr, _value, cond in equalities
                    if attr not in index.attributes
                ]
                source = element.extension()
                filtered = Relation(source.schema, rows)
                if residual:
                    filtered = select(filtered, residual)
                self.clock.charge("local", self.profile.index_probe)
                return (
                    self.engine.derive_full(match, query, prefiltered=filtered),
                    len(rows),
                )
        return self.engine.derive_full(match, query), match.element.rows_materialized()

    def _on_lazy_tuple(self, _row: tuple) -> None:
        self.metrics.incr(LAZY_TUPLES_PRODUCED)
        self.clock.charge("local", self.profile.cache_per_tuple)

    def _execute_parts(self, plan: QueryPlan) -> LocalResult:
        produced: list[Relation] = []
        remote_parts = [p for p in plan.parts if isinstance(p, RemotePart)]
        cache_parts = [p for p in plan.parts if isinstance(p, CachePart)]

        def run_remote() -> None:
            if self.batch_remote and len(remote_parts) > 1:
                shared: dict[int, Relation] = {}
                missing: list[int] = []
                for index, part in enumerate(remote_parts):
                    reused = self._shared_subplan(part)
                    if reused is not None:
                        shared[index] = reused
                    else:
                        missing.append(index)
                if missing:
                    relations = self.rdi.fetch_many(
                        [remote_parts[i].sub_query for i in missing]
                    )
                    for index, relation in zip(missing, relations):
                        part = remote_parts[index]
                        shared[index] = relation
                        self._publish_subplan(part, relation)
                        self._register_intermediate(
                            part.sub_query,
                            relation,
                            operator="remote-fetch",
                            measured=self._remote_part_estimate(relation),
                        )
                for index, part in enumerate(remote_parts):
                    produced.append(
                        self._with_columns(shared[index], part.columns, "remote")
                    )
                return
            for part in remote_parts:
                relation = self._shared_subplan(part)
                if relation is None:
                    started = self.clock.now
                    relation = self.rdi.fetch(part.sub_query)
                    measured = self.clock.now - started
                    self._publish_subplan(part, relation)
                    self._register_intermediate(
                        part.sub_query,
                        relation,
                        operator="remote-fetch",
                        measured=measured or self._remote_part_estimate(relation),
                    )
                produced.append(self._with_columns(relation, part.columns, "remote"))

        def run_cache() -> None:
            for part in cache_parts:
                self.cache.touch(part.match.element)
                self.cache.note_hit(part.match.element)
                self.cache.credit_saving(part.match.element)
                source_rows = part.match.element.rows_materialized()
                relation = self._cache_part_relation(part)
                self._charge_local(source_rows + len(relation))
                self._register_cache_part(plan, part, relation, source_rows)
                produced.append(relation)

        if any(p.bind_columns for p in remote_parts):
            # Semijoin path: the cache track must run first — its produced
            # relations are the binding source — so the two tracks are
            # sequential by construction (the planner priced that in).
            run_cache()
            binding_source = list(produced)
            for part in remote_parts:
                produced.append(
                    self._fetch_semijoined(plan, part, binding_source, cache_parts)
                )
            result = self._combine(produced, plan)
            self.metrics.incr(EAGER_TUPLES_PRODUCED, len(result))
            return result

        if self.parallel and remote_parts and cache_parts:
            with self.tracer.span(
                "executor.parallel_tracks", view=plan.query.name
            ) as span:
                with self.clock.parallel() as region:
                    run_remote()  # charges the "remote" track inside the RDI
                    run_cache()   # charges the "local" track
                # The region is over: record what each track cost, and how
                # much overlap saved versus sequential execution.
                tracks = region.tracks
                for track, seconds in sorted(tracks.items()):
                    span.set(f"track.{track}", seconds)
                if tracks:
                    span.set(
                        "overlap_saved_seconds",
                        sum(tracks.values()) - max(tracks.values()),
                    )
        else:
            run_remote()
            run_cache()

        result = self._combine(produced, plan)
        self.metrics.incr(EAGER_TUPLES_PRODUCED, len(result))
        return result

    def _cache_part_relation(self, part: CachePart) -> Relation:
        return derive_part(part.match, list(part.columns))

    # -- shared multi-query optimization (MQO) --------------------------------------
    def _shared_subplan(self, part: RemotePart) -> Relation | None:
        """A concurrent session's identical unreduced round trip, if the
        server's in-flight registry holds one (None otherwise).  A hit
        reuses the already-shipped rows instead of repeating the fetch;
        only the copy into this session's space is charged, as local work.
        Semijoin-reduced parts never share: their results depend on this
        session's binding values."""
        if self.subplan_registry is None or part.bind_columns:
            return None
        relation = self.subplan_registry.lookup(part.sub_query)
        if relation is None:
            return None
        self.metrics.incr(SERVER_SHARED_SUBPLANS)
        self.tracer.event(
            "mqo.share", view=part.sub_query.name, rows=len(relation)
        )
        self._charge_local(len(relation))
        return relation

    def _publish_subplan(self, part: RemotePart, relation: Relation) -> None:
        """Offer an unreduced part's rows to concurrently running sessions."""
        if self.subplan_registry is not None and not part.bind_columns:
            self.subplan_registry.publish(part.sub_query, relation)

    # -- operator-level intermediate registration -----------------------------------
    def _remote_part_estimate(self, relation: Relation) -> float:
        """The cost model's price of the fetch that produced ``relation``.

        Used when the wall-clock measurement reads zero: inside a parallel
        region ``clock.now`` is frozen until the region closes, so elapsed
        time cannot be observed there."""
        return (
            self.profile.remote_latency
            + len(relation) * self.profile.transfer_per_tuple
        )

    def _register_intermediate(
        self,
        definition: PSJQuery,
        relation: Relation,
        operator: str,
        measured: float,
        parents: tuple[str, ...] = (),
    ) -> None:
        """Best-effort registration of an operator-level result as a cache
        element carrying derivation lineage.  A no-op when the feature is
        off, and silently dropped when the cache cannot make room (a tiny
        cache whose every resident element this very plan has pinned)."""
        if not self.cache_intermediates or not isinstance(relation, Relation):
            return
        if not definition.projection:
            return  # existence-only parts carry nothing reusable
        try:
            self.cache.store(
                definition,
                relation,
                use="intermediate",
                kind="intermediate",
                parents=parents,
                operator=operator,
                derivation_seconds=max(measured, 0.0),
            )
        except CacheCapacityError:
            pass

    def _covered_definition(self, plan: QueryPlan, match: SubsumptionMatch):
        """The query occurrences a match covers, plus the exact condition
        set the derived rows satisfy, all in query column space.

        Conditions are the source element's definition conditions renamed
        through the tag mapping, united with the re-applied residuals
        mapped back from element attributes to query columns, deduplicated
        by normalized form.
        """
        occurrences = tuple(
            occ for occ in plan.query.occurrences if occ.tag in match.covered_tags
        )
        tag_map = dict(match.tag_mapping)
        attr_to_query = {attr: q_col for q_col, attr in match.column_map}
        conditions: list[Comparison] = []
        seen: set[str] = set()
        for condition in match.element.definition.conditions:
            renamed = _rename_condition(condition, tag_map)
            key = str(renamed.normalized())
            if key not in seen:
                seen.add(key)
                conditions.append(renamed)
        for condition in match.residual_conditions:
            renamed = condition.rename_columns(
                {c: attr_to_query[c] for c in condition.columns()}
            )
            key = str(renamed.normalized())
            if key not in seen:
                seen.add(key)
                conditions.append(renamed)
        return occurrences, tuple(conditions)

    def _register_cache_part(
        self, plan: QueryPlan, part: CachePart, relation: Relation, source_rows: int
    ) -> None:
        """Register a derived cache subset as its own element, child of the
        element it was selected/projected from.

        The merged definition — covered occurrences, the source element's
        conditions plus the residuals (all in query column space), the
        part's exposed columns as projection — is answered *exactly* by the
        produced rows: projection commutes with the residual selection
        because every residual column survives the source's projection
        (subsumption checked that).  Only strictly smaller derivations are
        registered; a near-copy of the source would just crowd the cache.
        """
        if not self.cache_intermediates or not part.columns:
            return
        match_arity = part.match.element.definition.arity
        if len(relation) >= source_rows and len(part.columns) >= match_arity:
            return
        occurrences, conditions = self._covered_definition(plan, part.match)
        definition = PSJQuery(
            f"{plan.query.name}#part",
            occurrences,
            conditions,
            tuple(part.columns),
        )
        stored = Relation(
            result_schema(definition.name, len(part.columns)), iter(relation)
        )
        derive_seconds = (
            (source_rows + len(relation))
            * self.profile.cache_per_tuple
            * self._local_cost_factor
        )
        self._register_intermediate(
            definition,
            stored,
            operator="select-project",
            measured=derive_seconds,
            parents=(part.match.element.element_id,),
        )

    def _binding_condition(self, plan: QueryPlan, spec) -> Comparison | None:
        """The combine-stage equality a binding spec implements, or None."""
        want = {spec.remote_column, spec.cache_column}
        for condition in plan.cross_conditions:
            if (
                condition.op == "="
                and condition.is_col_col()
                and condition.columns() == want
            ):
                return condition
        return None

    def _register_semijoin_fetch(
        self,
        plan: QueryPlan,
        part: RemotePart,
        relation: Relation,
        applied: list,
        cache_parts: list,
        measured: float,
    ) -> None:
        """Register a semijoin-reduced fetch under the merged definition
        (sub-query joined with its binding sources, projected onto the
        sub-query's columns).

        Soundness: under set semantics, projecting the equality join onto
        the sub-query's columns *is* the semijoin the shipped IN-lists
        computed — a sub-query tuple survives either one exactly when a
        matching source tuple exists.  Registration is skipped in the
        cases where independent IN-lists are weaker than the join: two
        specs drawing on the same source part (the join correlates them
        row-wise) or two specs reducing the same remote column (the later
        IN-list replaced the earlier).  A fetch where no spec applied is
        just an unreduced fetch and registers as one.

        The stored projection is *widened* beyond the sub-query's columns
        with source-side columns the join determines: the equality column
        itself (equal to the fetched one in every row of the merged
        definition) and any source-element column functionally determined
        by it (each binding value maps to exactly one source row —
        checked, not assumed).  Widening costs a few duplicated values but
        is what makes the part reusable: it preserves join-internal
        columns the *query's* projection discarded, so a later
        tighter drill-down can re-apply its residual condition locally
        instead of re-fetching.
        """
        if not self.cache_intermediates:
            return
        if not applied:
            self._register_intermediate(
                part.sub_query,
                relation,
                operator="remote-fetch",
                measured=measured or self._remote_part_estimate(relation),
            )
            return
        if not part.sub_query.projection:
            return
        source_indexes = [index for _spec, index in applied]
        remote_columns = [spec.remote_column for spec, _index in applied]
        if len(set(source_indexes)) != len(source_indexes):
            return
        if len(set(remote_columns)) != len(remote_columns):
            return
        occurrences = list(part.sub_query.occurrences)
        conditions = list(part.sub_query.conditions)
        parents: list[str] = []
        widen_names: list[str] = []
        widen_fns: list = []  # fetched row -> appended value
        taken = set(part.sub_query.projection)
        for spec, index in applied:
            if index >= len(cache_parts):
                return
            source = cache_parts[index]
            equality = self._binding_condition(plan, spec)
            if equality is None:
                return
            occs, conds = self._covered_definition(plan, source.match)
            occurrences.extend(occs)
            conditions.extend(conds)
            conditions.append(equality)
            parents.append(source.match.element.element_id)
            if spec.remote_column not in part.sub_query.projection:
                continue
            remote_pos = part.sub_query.projection.index(spec.remote_column)
            if spec.cache_column not in taken:
                # The equality makes the source-side name a duplicate of
                # the fetched column, row for row.
                widen_names.append(spec.cache_column)
                widen_fns.append(lambda row, p=remote_pos: row[p])
                taken.add(spec.cache_column)
            # Join-determined source columns come from the source *element*
            # (the produced part may already have projected them away).
            column_map = dict(source.match.column_map)
            key_attr = column_map.get(spec.cache_column)
            if key_attr is None:
                continue
            extension = source.match.element.extension()
            key_pos = extension.schema.position(key_attr)
            mapping: dict = {}
            conflicted: set[int] = set()
            for source_row in extension:
                prior = mapping.setdefault(source_row[key_pos], source_row)
                if prior is not source_row:
                    for position in range(len(source_row)):
                        if prior[position] != source_row[position]:
                            conflicted.add(position)
            self._charge_local(len(extension))  # the functional-check pass
            for q_col, attr in column_map.items():
                if q_col in taken:
                    continue
                position = extension.schema.position(attr)
                if position == key_pos or position in conflicted:
                    continue
                widen_names.append(q_col)
                widen_fns.append(
                    lambda row, m=mapping, rp=remote_pos, sp=position: m[row[rp]][sp]
                )
                taken.add(q_col)
        deduped: list[Comparison] = []
        seen: set[str] = set()
        for condition in conditions:
            key = str(condition.normalized())
            if key not in seen:
                seen.add(key)
                deduped.append(condition)
        projection = tuple(part.sub_query.projection) + tuple(widen_names)
        stored = relation
        if widen_names:
            try:
                rows = [
                    row + tuple(fn(row) for fn in widen_fns) for row in relation
                ]
            except KeyError:
                # A fetched value outside the binding source (should not
                # happen — the IN-list came from it); widening would be
                # guesswork, so register nothing.
                return
            stored = Relation(
                result_schema(f"{part.sub_query.name}#semijoin", len(projection)),
                rows,
            )
        definition = PSJQuery(
            f"{part.sub_query.name}#semijoin",
            tuple(occurrences),
            tuple(deduped),
            projection,
        )
        self._register_intermediate(
            definition,
            stored,
            operator="semijoin-fetch",
            measured=measured or self._remote_part_estimate(relation),
            parents=tuple(dict.fromkeys(parents)),
        )

    # -- semijoin reduction ---------------------------------------------------------
    def _fetch_semijoined(
        self,
        plan: QueryPlan,
        part: RemotePart,
        binding_source: list[Relation],
        cache_parts: list | None = None,
    ) -> Relation:
        """Fetch one remote part reduced by bindings from the cache track.

        An empty binding set proves the combine-stage join empty, so the
        round trip is skipped entirely (zero requests) and an empty part
        relation is produced instead.
        """
        bindings: dict[str, tuple[object, ...]] = {}
        applied: list[tuple[object, int]] = []  # (spec, binding source index)
        for spec in part.bind_columns:
            found = self._extract_bindings(spec.cache_column, binding_source)
            if found is None:
                continue  # source column not exposed: fall back to unbound
            source_index, values = found
            if not values:
                self.tracer.event(
                    "rdi.semijoin",
                    view=part.sub_query.name,
                    columns=[spec.remote_column],
                    values=0,
                    short_circuit=True,
                )
                if part.columns:
                    return Relation(Schema("remote", part.columns), [])
                return Relation(Schema("remote", ("_exists_remote",)), [])
            bindings[spec.remote_column] = values
            applied.append((spec, source_index))
        started = self.clock.now
        relation = self.rdi.fetch(part.sub_query, bindings=bindings or None)
        self._register_semijoin_fetch(
            plan,
            part,
            relation,
            applied,
            cache_parts if cache_parts is not None else [],
            self.clock.now - started,
        )
        return self._with_columns(relation, part.columns, "remote")

    def _extract_bindings(
        self, cache_column: str, produced: list[Relation]
    ) -> tuple[int, tuple[object, ...]] | None:
        """Distinct values of ``cache_column`` from the first produced cache
        part exposing it, with that part's index (None when no part exposes
        the column)."""
        for index, relation in enumerate(produced):
            if cache_column not in relation.schema.attributes:
                continue
            position = relation.schema.position(cache_column)
            seen: set[object] = set()
            values: list[object] = []
            for row in relation:
                value = row[position]
                if value not in seen:
                    seen.add(value)
                    values.append(value)
            # The extraction pass re-reads the part's rows.
            self._charge_local(len(relation))
            return index, tuple(values)
        return None

    # -- graceful degradation (remote unreachable) ---------------------------------
    def derive_degraded(self, match: SubsumptionMatch, query: PSJQuery) -> Relation:
        """Answer ``query`` from a (possibly stale) full subsumption match.

        Used when retries are exhausted: the element typically lives in
        the stale archive rather than the cache proper, so no LRU
        bookkeeping applies — but the hit still saved a remote fetch, so
        the efficacy ledger is credited.
        """
        result = derive_full(match, query)
        self.cache.credit_saving(match.element)
        self._charge_local(match.element.rows_materialized() + len(result))
        self.metrics.incr(EAGER_TUPLES_PRODUCED, len(result))
        return result

    def execute_degraded(self, plan: QueryPlan) -> Relation | None:
        """Best-effort partial answer from the plan's cache parts alone.

        The remote part failed; ship what the cache can prove.  Columns
        only the remote side could have produced come back as ``None``,
        and cross conditions touching them cannot be checked — the result
        is a *partial* answer and must be tagged degraded by the caller.
        Returns None when the plan has no cache-resident component.
        """
        cache_parts = [p for p in plan.parts if isinstance(p, CachePart)]
        if not cache_parts:
            return None
        produced: list[Relation] = []
        for part in cache_parts:
            self.cache.touch(part.match.element)
            self.cache.credit_saving(part.match.element)
            source_rows = part.match.element.rows_materialized()
            relation = self._cache_part_relation(part)
            self._charge_local(source_rows + len(relation))
            produced.append(relation)
        result = self._combine_degraded(produced, plan)
        self.metrics.incr(EAGER_TUPLES_PRODUCED, len(result))
        return result

    def _combine_degraded(self, parts: list[Relation], plan: QueryPlan) -> Relation:
        """The combine stage when some columns never arrived: join the
        available parts, drop unverifiable conditions, null out missing
        projection columns."""
        pending = list(plan.cross_conditions)
        combined = parts[0]
        seen_cols = set(combined.schema.attributes)
        input_rows = len(combined)
        for relation in parts[1:]:
            right_cols = set(relation.schema.attributes)
            pairs, residual, remaining = [], [], []
            for condition in pending:
                cols = condition.columns()
                if cols <= (seen_cols | right_cols):
                    left_side = cols & seen_cols
                    right_side = cols & right_cols
                    if (
                        condition.op == "="
                        and condition.is_col_col()
                        and len(left_side) == 1
                        and len(right_side) == 1
                    ):
                        pairs.append((left_side.pop(), right_side.pop()))
                    else:
                        residual.append(condition)
                else:
                    remaining.append(condition)
            combined = join(combined, relation, pairs, name="combine", conditions=residual)
            seen_cols |= right_cols
            input_rows += len(relation) + len(combined)
            pending = remaining
        applicable = [c for c in pending if c.columns() <= seen_cols]
        if applicable:
            combined = select(combined, applicable)

        schema = result_schema(plan.query.name, plan.query.arity)
        entries: list[tuple[str, object]] = []
        for entry in plan.query.projection:
            if isinstance(entry, ConstProj):
                entries.append(("const", entry.value))
            elif entry in combined.schema.attributes:
                entries.append(("col", combined.schema.position(entry)))
            else:
                entries.append(("const", None))  # the remote side had it
        if entries:
            rows = (
                tuple(v if kind == "const" else row[v] for kind, v in entries)
                for row in combined
            )
            result = Relation(schema, rows)
        else:
            result = Relation(schema, [(True,)] if len(combined) else [])
        self._charge_local(input_rows + len(result))
        return result

    def _with_columns(self, relation: Relation, columns: tuple[str, ...], label: str) -> Relation:
        if not columns:
            schema = Schema(label, (f"_exists_{label}",))
            return Relation(schema, [(True,)] if len(relation) else [])
        schema = Schema(label, columns)
        return Relation(schema, iter(relation))

    def _combine(self, parts: list[Relation], plan: QueryPlan) -> LocalResult:
        if not parts:
            raise PlanningError("no parts produced anything to combine")
        engine = self.engine
        pending = list(plan.cross_conditions)
        combined = engine.ingest(parts[0])
        seen_cols = set(combined.schema.attributes)
        input_rows = len(combined)
        for relation in parts[1:]:
            right_cols = set(relation.schema.attributes)
            pairs, residual, remaining = [], [], []
            for condition in pending:
                cols = condition.columns()
                if cols <= (seen_cols | right_cols):
                    left_side = cols & seen_cols
                    right_side = cols & right_cols
                    if (
                        condition.op == "="
                        and condition.is_col_col()
                        and len(left_side) == 1
                        and len(right_side) == 1
                    ):
                        pairs.append((left_side.pop(), right_side.pop()))
                    else:
                        residual.append(condition)
                else:
                    remaining.append(condition)
            combined = engine.join(
                combined, engine.ingest(relation), pairs,
                name="combine", conditions=residual,
            )
            seen_cols |= right_cols
            input_rows += len(relation) + len(combined)
            pending = remaining
        if pending:
            combined = engine.select(combined, pending)

        schema = result_schema(plan.query.name, plan.query.arity)
        entries = []
        for entry in plan.query.projection:
            if isinstance(entry, ConstProj):
                entries.append(("const", entry.value))
            else:
                entries.append(("col", combined.schema.position(entry)))
        if entries:
            result = engine.project_entries(combined, entries, schema)
        else:
            result = Relation(schema, [(True,)] if len(combined) else [])
        self._charge_local(input_rows + len(result))
        return result
