"""First-order terms: variables, constants, and atomic formulas.

The IE's knowledge base, CAQL's conjunctive core, view specifications, and
the subsumption algorithm all manipulate the same term language, so it lives
in one place.  Terms are immutable and hashable; substitutions are immutable
mappings with functional update.

The language is function-free (Datalog-style) at the data level — constants
are Python values — but :class:`Atom` heads/literals carry a predicate name
and a tuple of terms, which is all the paper's examples require.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Union

_fresh_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Var:
    """A logic variable, identified by name.

    Names starting with ``_G`` are reserved for machine-generated fresh
    variables (see :func:`fresh_var`).
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True, slots=True)
class Const:
    """A constant; wraps an arbitrary hashable Python value."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return self.value
        return repr(self.value)

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


#: A term is a variable or a constant (the language is function-free).
Term = Union[Var, Const]


def fresh_var(hint: str = "") -> Var:
    """Return a variable guaranteed distinct from every parsed variable."""
    return Var(f"_G{hint}{next(_fresh_counter)}")


def reset_fresh_counter() -> None:
    """Restart fresh-variable numbering (tests only; not thread safe)."""
    global _fresh_counter
    _fresh_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``pred(t1, ..., tn)``.

    ``negated`` supports the culling logic around mutual-exclusion SOAs;
    the core query language is negation-free.
    """

    pred: str
    args: tuple[Term, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def signature(self) -> tuple[str, int]:
        """``(name, arity)`` — the key under which predicates are indexed."""
        return (self.pred, self.arity)

    def variables(self) -> set[Var]:
        """The set of variables occurring in the atom."""
        return {t for t in self.args if isinstance(t, Var)}

    def constants(self) -> set[Const]:
        """The set of constants occurring in the atom."""
        return {t for t in self.args if isinstance(t, Const)}

    def is_ground(self) -> bool:
        """True when no argument is a variable."""
        return all(isinstance(t, Const) for t in self.args)

    def positive(self) -> "Atom":
        """The same atom with negation stripped."""
        if not self.negated:
            return self
        return Atom(self.pred, self.args)

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        body = f"{self.pred}({inner})" if self.args else self.pred
        return f"\\+{body}" if self.negated else body

    def __repr__(self) -> str:
        return f"Atom({str(self)!r})"


class Substitution(Mapping[Var, Term]):
    """An immutable variable binding map with functional update.

    Bindings are fully dereferenced on construction: a substitution never
    maps a variable to another variable that it also binds, so ``resolve``
    is a single dictionary lookup chain of length at most two.
    """

    __slots__ = ("_map",)

    def __init__(self, bindings: Mapping[Var, Term] | Iterable[tuple[Var, Term]] = ()):
        self._map: dict[Var, Term] = dict(bindings)

    # -- Mapping protocol ---------------------------------------------------
    def __getitem__(self, var: Var) -> Term:
        return self._map[var]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}={t}" for v, t in sorted(self._map.items(), key=lambda p: p[0].name))
        return f"{{{inner}}}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._map == other._map
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    # -- operations ----------------------------------------------------------
    def resolve(self, term: Term) -> Term:
        """Follow bindings until a constant or an unbound variable."""
        while isinstance(term, Var) and term in self._map:
            term = self._map[term]
        return term

    def bind(self, var: Var, term: Term) -> "Substitution":
        """A new substitution with ``var`` bound to ``term``.

        ``term`` is resolved first so chains never grow.
        """
        resolved = self.resolve(term)
        if isinstance(resolved, Var) and resolved == var:
            return self
        new = dict(self._map)
        new[var] = resolved
        return Substitution(new)

    def apply(self, atom: Atom) -> Atom:
        """Replace every bound variable in ``atom`` with its value."""
        if not self._map:
            return atom
        return Atom(
            atom.pred,
            tuple(self.resolve(a) if isinstance(a, Var) else a for a in atom.args),
            negated=atom.negated,
        )

    def apply_term(self, term: Term) -> Term:
        """Resolve a single term through the substitution."""
        return self.resolve(term) if isinstance(term, Var) else term

    def compose(self, other: "Substitution") -> "Substitution":
        """The substitution equivalent to applying ``self`` then ``other``."""
        merged: dict[Var, Term] = {}
        for var, term in self._map.items():
            merged[var] = other.apply_term(term)
        for var, term in other._map.items():
            merged.setdefault(var, term)
        return Substitution(merged)

    def restricted(self, variables: Iterable[Var]) -> "Substitution":
        """Only the bindings for the given variables."""
        wanted = set(variables)
        return Substitution({v: t for v, t in self._map.items() if v in wanted})


EMPTY_SUBSTITUTION = Substitution()


def rename_apart(atoms: Iterable[Atom], suffix: str | None = None) -> tuple[list[Atom], Substitution]:
    """Rename every variable in ``atoms`` to a fresh variable.

    Returns the renamed atoms and the renaming substitution.  Used to keep
    rule variables disjoint from goal variables during resolution.
    """
    atoms = list(atoms)
    mapping: dict[Var, Term] = {}
    for atom in atoms:
        for var in atom.variables():
            if var not in mapping:
                mapping[var] = fresh_var(suffix or "")
    renaming = Substitution(mapping)
    return [renaming.apply(a) for a in atoms], renaming
