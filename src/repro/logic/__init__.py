"""Logic substrate: terms, unification, parsing, knowledge bases, SOAs."""

from repro.logic.builtins import DEFAULT_BUILTINS, BuiltinRegistry
from repro.logic.kb import KnowledgeBase, knowledge_base_from_source
from repro.logic.parser import (
    Clause,
    parse_atom,
    parse_clause,
    parse_literals,
    parse_program,
)
from repro.logic.soa import (
    FunctionalDependency,
    MutualExclusion,
    RecursiveStructure,
    SOARegistry,
)
from repro.logic.terms import (
    EMPTY_SUBSTITUTION,
    Atom,
    Const,
    Substitution,
    Term,
    Var,
    fresh_var,
    rename_apart,
)
from repro.logic.unify import instance_of, match_one_way, unify, unify_terms, variant

__all__ = [
    "Atom",
    "BuiltinRegistry",
    "Clause",
    "Const",
    "DEFAULT_BUILTINS",
    "EMPTY_SUBSTITUTION",
    "FunctionalDependency",
    "KnowledgeBase",
    "MutualExclusion",
    "RecursiveStructure",
    "SOARegistry",
    "Substitution",
    "Term",
    "Var",
    "fresh_var",
    "instance_of",
    "knowledge_base_from_source",
    "match_one_way",
    "parse_atom",
    "parse_clause",
    "parse_literals",
    "parse_program",
    "rename_apart",
    "unify",
    "unify_terms",
    "variant",
]
