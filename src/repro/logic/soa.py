"""Second-order assertions (SOAs).

Section 4 of the paper: "we include in our knowledge base limited kinds of
second-order assertions (SOA's), in particular, mutual exclusion and
functional dependency SOA's useful for problem graph culling and constraint,
and SOA's that define certain relations as recursive structures of other
relations."

Three SOA kinds are implemented:

* :class:`MutualExclusion` — at most one of a set of conditions can hold,
  letting the problem-graph shaper cull OR branches and letting the
  path-expression creator emit alternations with selection term 1;
* :class:`FunctionalDependency` — attribute positions of a relation
  determine others, informing producer/consumer orderings; and
* :class:`RecursiveStructure` — declares a relation as the closure of a base
  relation (e.g. ``ancestor`` = transitive closure of ``parent``), which the
  compiled strategies can map to a fixed-point operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import KnowledgeBaseError
from repro.logic.terms import Atom, Const, Substitution
from repro.logic.unify import unify


@dataclass(frozen=True)
class MutualExclusion:
    """At most ``max_true`` of the ``alternatives`` can hold simultaneously.

    Each alternative is an atom pattern.  Two goals matching *different*
    alternatives under a common substitution are mutually exclusive, so the
    shaper may cull one branch once the other is known to hold, and the
    path-expression creator may mark the group with selection term
    ``max_true``.
    """

    alternatives: tuple[Atom, ...]
    max_true: int = 1

    def __post_init__(self) -> None:
        if len(self.alternatives) < 2:
            raise KnowledgeBaseError("mutual exclusion needs at least two alternatives")
        if not 1 <= self.max_true < len(self.alternatives):
            raise KnowledgeBaseError(
                f"max_true must be in [1, {len(self.alternatives) - 1}], got {self.max_true}"
            )

    def covers(self, goals: list[Atom]) -> bool:
        """True when every goal matches a distinct alternative consistently.

        A consistent common substitution across the matches is required:
        ``me(p(X), q(X))`` excludes ``p(a)`` with ``q(a)`` but says nothing
        about ``p(a)`` with ``q(b)``.
        """
        if len(goals) < 2 or len(goals) > len(self.alternatives):
            return False
        return self._cover(goals, list(self.alternatives), Substitution())

    def _cover(self, goals: list[Atom], alternatives: list[Atom], subst: Substitution) -> bool:
        if not goals:
            return True
        goal, *rest = goals
        for i, alt in enumerate(alternatives):
            extended = unify(alt, goal, subst)
            if extended is not None:
                remaining = alternatives[:i] + alternatives[i + 1:]
                if self._cover(rest, remaining, extended):
                    return True
        return False

    def __str__(self) -> str:
        inner = "; ".join(str(a) for a in self.alternatives)
        return f"mutex<{self.max_true}>({inner})"


@dataclass(frozen=True)
class FunctionalDependency:
    """``determinants -> dependents`` over argument positions of ``pred``.

    Positions are zero-based.  Example: ``FunctionalDependency("employee",
    (0,), (1, 2))`` says the first argument of ``employee/3`` determines the
    other two — so once it is bound, at most one tuple matches, which the
    shaper uses both for conjunct ordering and for cardinality estimates.
    """

    pred: str
    arity: int
    determinants: tuple[int, ...]
    dependents: tuple[int, ...]

    def __post_init__(self) -> None:
        positions = set(self.determinants) | set(self.dependents)
        if not positions or max(positions) >= self.arity or min(positions) < 0:
            raise KnowledgeBaseError(
                f"FD positions out of range for {self.pred}/{self.arity}: {sorted(positions)}"
            )
        if set(self.determinants) & set(self.dependents):
            raise KnowledgeBaseError("FD determinant and dependent positions overlap")

    def key_bound(self, atom: Atom) -> bool:
        """True when every determinant position of ``atom`` is a constant."""
        if atom.signature != (self.pred, self.arity):
            return False
        return all(isinstance(atom.args[i], Const) for i in self.determinants)

    def determined_positions(self, atom: Atom) -> tuple[int, ...]:
        """Dependent positions that become single-valued once the key is bound."""
        if not self.key_bound(atom):
            return ()
        return self.dependents

    def __str__(self) -> str:
        det = ",".join(str(i) for i in self.determinants)
        dep = ",".join(str(i) for i in self.dependents)
        return f"fd({self.pred}/{self.arity}: {det} -> {dep})"


@dataclass(frozen=True)
class RecursiveStructure:
    """Declares ``closure_pred`` as a recursive structure over ``base_pred``.

    ``kind`` names the closure operator; only ``"transitive"`` is built in
    (``closure = base+``), which covers the genealogy-style rules in the
    paper's examples.  Compiled inference strategies translate a goal on
    ``closure_pred`` into a fixed-point CAQL request instead of unfolding
    the recursion rule by rule.
    """

    closure_pred: str
    base_pred: str
    arity: int = 2
    kind: str = "transitive"

    def __post_init__(self) -> None:
        if self.kind != "transitive":
            raise KnowledgeBaseError(f"unsupported recursive-structure kind: {self.kind!r}")
        if self.arity != 2:
            raise KnowledgeBaseError("transitive closure is only defined for binary relations")

    def __str__(self) -> str:
        return f"recursive({self.closure_pred} = {self.kind}({self.base_pred}))"


@dataclass
class SOARegistry:
    """All second-order assertions of a knowledge base, indexed for lookup."""

    mutual_exclusions: list[MutualExclusion] = field(default_factory=list)
    functional_dependencies: list[FunctionalDependency] = field(default_factory=list)
    recursive_structures: list[RecursiveStructure] = field(default_factory=list)

    def add(self, soa: MutualExclusion | FunctionalDependency | RecursiveStructure) -> None:
        """Register an assertion, dispatching on its type."""
        if isinstance(soa, MutualExclusion):
            self.mutual_exclusions.append(soa)
        elif isinstance(soa, FunctionalDependency):
            self.functional_dependencies.append(soa)
        elif isinstance(soa, RecursiveStructure):
            self.recursive_structures.append(soa)
        else:
            raise KnowledgeBaseError(f"unknown SOA type: {type(soa).__name__}")

    def fds_for(self, pred: str, arity: int) -> list[FunctionalDependency]:
        """Functional dependencies declared for ``pred/arity``."""
        return [fd for fd in self.functional_dependencies if fd.pred == pred and fd.arity == arity]

    def recursive_for(self, pred: str) -> RecursiveStructure | None:
        """The recursive-structure SOA whose closure is ``pred``, or None."""
        for rs in self.recursive_structures:
            if rs.closure_pred == pred:
                return rs
        return None

    def exclusions_mentioning(self, pred: str) -> list[MutualExclusion]:
        """Mutual exclusions with an alternative on ``pred``."""
        return [
            me
            for me in self.mutual_exclusions
            if any(alt.pred == pred for alt in me.alternatives)
        ]

    def exclusive_pair(self, a: Atom, b: Atom) -> bool:
        """True when some mutual-exclusion SOA covers both goals."""
        return any(me.covers([a, b]) for me in self.mutual_exclusions)
