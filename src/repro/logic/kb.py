"""The IE's knowledge base: rules, local facts, SOAs, and predicate classes.

Section 3 of the paper: "The IE controls the knowledge base".  The knowledge
base distinguishes three classes of predicate, which drive problem-graph
extraction (Section 4.1):

* **database relations** — leaves resolved by CAQL queries to the CMS;
* **built-in relations** — evaluable predicates (comparisons, arithmetic);
* **user-defined relations** — defined by rules (and possibly local facts),
  expanded during problem-graph construction.

The knowledge base also maintains the *predicate connection graph*: for each
user-defined predicate, the clauses defining it, and from each clause the
predicates its body references.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.common.errors import KnowledgeBaseError
from repro.logic.builtins import DEFAULT_BUILTINS, BuiltinRegistry
from repro.logic.parser import Clause, parse_program
from repro.logic.soa import (
    FunctionalDependency,
    MutualExclusion,
    RecursiveStructure,
    SOARegistry,
)
from repro.logic.terms import Atom

#: Signature type: (predicate name, arity).
Signature = tuple[str, int]


@dataclass
class KnowledgeBase:
    """Rules, local facts, second-order assertions, and predicate classes."""

    builtins: BuiltinRegistry = field(default_factory=lambda: DEFAULT_BUILTINS)
    soas: SOARegistry = field(default_factory=SOARegistry)
    _clauses: dict[Signature, list[Clause]] = field(default_factory=lambda: defaultdict(list))
    _database: set[Signature] = field(default_factory=set)
    _clause_order: list[Clause] = field(default_factory=list)

    # -- declarations ----------------------------------------------------------
    def declare_database(self, pred: str, arity: int) -> None:
        """Declare ``pred/arity`` as a relation stored in the remote DBMS."""
        signature = (pred, arity)
        if signature in self._clauses and self._clauses[signature]:
            raise KnowledgeBaseError(
                f"{pred}/{arity} already has rules; it cannot also be a database relation"
            )
        self._database.add(signature)

    def add_clause(self, clause: Clause) -> None:
        """Add a rule or local fact for a user-defined predicate."""
        signature = clause.head.signature
        if signature in self._database:
            raise KnowledgeBaseError(
                f"{signature[0]}/{signature[1]} is a database relation; rules may not define it"
            )
        if self.builtins.is_builtin(clause.head):
            raise KnowledgeBaseError(
                f"{signature[0]}/{signature[1]} is a built-in; rules may not define it"
            )
        self._clauses[signature].append(clause)
        self._clause_order.append(clause)

    def add_rules(self, text: str) -> list[Clause]:
        """Parse and add every clause in ``text``; returns the clauses."""
        clauses = parse_program(text)
        for clause in clauses:
            self.add_clause(clause)
        return clauses

    def add_soa(self, soa: MutualExclusion | FunctionalDependency | RecursiveStructure) -> None:
        """Register a second-order assertion."""
        self.soas.add(soa)

    # -- classification ----------------------------------------------------------
    def is_database(self, atom: Atom) -> bool:
        """True when the atom names a remote base relation."""
        return atom.signature in self._database

    def is_builtin(self, atom: Atom) -> bool:
        """True when an evaluable built-in matches the atom."""
        return self.builtins.is_builtin(atom)

    def is_user_defined(self, atom: Atom) -> bool:
        """True when rules or local facts define the atom."""
        return atom.signature in self._clauses

    def classify(self, atom: Atom) -> str:
        """One of ``"database"``, ``"builtin"``, ``"user"``, ``"unknown"``."""
        if self.is_database(atom):
            return "database"
        if self.is_builtin(atom):
            return "builtin"
        if self.is_user_defined(atom):
            return "user"
        return "unknown"

    # -- access --------------------------------------------------------------------
    def clauses_for(self, atom: Atom) -> list[Clause]:
        """The clauses whose head signature matches ``atom``."""
        return list(self._clauses.get(atom.signature, ()))

    def database_signatures(self) -> set[Signature]:
        """All declared database (pred, arity) pairs."""
        return set(self._database)

    def user_signatures(self) -> set[Signature]:
        """All rule-defined (pred, arity) pairs."""
        return set(self._clauses)

    def all_clauses(self) -> Iterator[Clause]:
        """Every clause, grouped by predicate, in insertion order."""
        for group in self._clauses.values():
            yield from group

    def rule_id(self, clause: Clause) -> str:
        """A stable identifier (``R1``, ``R2``, ...) by registration order.

        Rule identifiers label view specifications "for human consumption"
        (Section 4.2.1) and tie problem-graph AND nodes back to the KB.
        """
        try:
            return f"R{self._clause_order.index(clause) + 1}"
        except ValueError:
            raise KnowledgeBaseError(f"clause not in this knowledge base: {clause}") from None

    # -- predicate connection graph ---------------------------------------------
    def connection_graph(self) -> dict[Signature, set[Signature]]:
        """Edges from each user-defined predicate to the predicates it calls."""
        graph: dict[Signature, set[Signature]] = {}
        for signature, clauses in self._clauses.items():
            edges: set[Signature] = set()
            for clause in clauses:
                for literal in clause.body:
                    edges.add(literal.positive().signature)
            graph[signature] = edges
        return graph

    def reachable_signatures(self, root: Signature) -> set[Signature]:
        """All predicate signatures reachable from ``root`` in the connection graph.

        Includes database and built-in leaves; this is the predicate-level
        footprint of a problem graph and the basis for the simplest form of
        advice (the unordered list of relevant base relations, Section 4.2).
        """
        graph = self.connection_graph()
        seen: set[Signature] = set()
        frontier = [root]
        while frontier:
            signature = frontier.pop()
            if signature in seen:
                continue
            seen.add(signature)
            for edge in graph.get(signature, ()):
                if edge not in seen:
                    frontier.append(edge)
        return seen

    def relevant_database_relations(self, query: Atom) -> set[Signature]:
        """Database relations reachable from an AI query — the simplest advice."""
        return {
            signature
            for signature in self.reachable_signatures(query.signature)
            if signature in self._database
        }

    def is_recursive(self, signature: Signature) -> bool:
        """True when ``signature`` can (transitively) call itself."""
        graph = self.connection_graph()
        seen: set[Signature] = set()
        frontier = list(graph.get(signature, ()))
        while frontier:
            current = frontier.pop()
            if current == signature:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(graph.get(current, ()))
        return False

    def validate(self) -> list[str]:
        """Sanity-check the knowledge base; returns a list of problems.

        Flags body literals that are neither database, built-in, nor
        user-defined — usually a typo in a rule.
        """
        problems = []
        for clause in self.all_clauses():
            for literal in clause.body:
                positive = literal.positive()
                if self.classify(positive) == "unknown":
                    problems.append(
                        f"clause {clause} references undefined predicate "
                        f"{positive.pred}/{positive.arity}"
                    )
        return problems


def knowledge_base_from_source(
    rules: str,
    database: Iterable[Signature] = (),
    soas: Iterable[MutualExclusion | FunctionalDependency | RecursiveStructure] = (),
) -> KnowledgeBase:
    """Convenience constructor: declare database relations, then parse rules."""
    kb = KnowledgeBase()
    for pred, arity in database:
        kb.declare_database(pred, arity)
    kb.add_rules(rules)
    for soa in soas:
        kb.add_soa(soa)
    return kb
