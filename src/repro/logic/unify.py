"""Unification and one-directional (subsumption) matching.

Two flavours are needed by the paper:

* full **unification** (:func:`unify`) drives the IE's resolution steps; and
* **one-directional matching** (:func:`match_one_way`), the operation the
  CMS uses when checking whether a cache element can subsume a query
  (Section 5.3.2): "a constant in the predicate in the subquery can match
  with the same constant or a variable at the corresponding position in the
  predicate in the cache element, but a variable can only match with a
  variable".

The language is function-free so no occurs check is required.
"""

from __future__ import annotations

from repro.logic.terms import Atom, Const, Substitution, Term, Var


def unify_terms(a: Term, b: Term, subst: Substitution) -> Substitution | None:
    """Unify two terms under ``subst``; None when they clash."""
    a = subst.resolve(a)
    b = subst.resolve(b)
    if a == b:
        return subst
    if isinstance(a, Var):
        return subst.bind(a, b)
    if isinstance(b, Var):
        return subst.bind(b, a)
    # Both constants, and unequal.
    return None


def unify(a: Atom, b: Atom, subst: Substitution | None = None) -> Substitution | None:
    """Unify two atoms; returns the extended substitution or None.

    Negation polarity must agree: a negated literal only unifies with a
    negated literal.
    """
    if subst is None:
        subst = Substitution()
    if a.pred != b.pred or a.arity != b.arity or a.negated != b.negated:
        return None
    for ta, tb in zip(a.args, b.args):
        result = unify_terms(ta, tb, subst)
        if result is None:
            return None
        subst = result
    return subst


def match_one_way(general: Atom, specific: Atom, subst: Substitution | None = None) -> Substitution | None:
    """Match ``general`` (cache-element predicate) against ``specific`` (query).

    Bindings flow only from ``general``'s variables to ``specific``'s terms:

    * a variable in ``general`` may match any term of ``specific``
      (consistently across repeated occurrences);
    * a constant in ``general`` matches only the identical constant.

    This makes the returned substitution a witness that ``general``
    *subsumes* ``specific`` positionally: every instance of ``specific``
    is an instance of ``general``.
    """
    if general.pred != specific.pred or general.arity != specific.arity:
        return None
    if general.negated != specific.negated:
        return None
    # The two atoms live in separate variable namespaces (a cache-element
    # definition vs a query), so the mapping must be kept raw: binding a
    # general variable to a specific term must NOT dereference that term
    # through earlier bindings, or shared variable names would collide.
    mapping: dict[Var, Term] = dict(subst) if subst is not None else {}
    for g, s in zip(general.args, specific.args):
        if isinstance(g, Const):
            if not isinstance(s, Const) or g.value != s.value:
                return None
            continue
        if g in mapping:
            # Repeated general variable: must agree exactly with s.
            if mapping[g] != s:
                return None
        else:
            mapping[g] = s
    return Substitution(mapping)


def instance_of(specific: Atom, general: Atom) -> bool:
    """True when ``specific`` is an instance of ``general``."""
    return match_one_way(general, specific) is not None


def variant(a: Atom, b: Atom) -> bool:
    """True when the atoms are equal up to variable renaming."""
    forward = match_one_way(a, b)
    if forward is None:
        return False
    backward = match_one_way(b, a)
    if backward is None:
        return False
    # Both directions must be injective on variables to be a renaming.
    return _injective(forward) and _injective(backward)


def _injective(subst: Substitution) -> bool:
    values = list(subst.values())
    return all(isinstance(v, Var) for v in values) and len(values) == len(set(values))
