"""Evaluable (built-in) relations: comparisons and arithmetic.

The paper's problem graphs bottom out in "database relations or built-in
relations (e.g., arithmetic or numeric comparison relations)" (Section 4.1).
Built-ins are evaluated by the IE (or by the CMS, which supports operations
the remote DBMS does not) rather than fetched from the database.

A built-in is registered by predicate signature.  Evaluation takes a ground
or partially-bound atom and yields zero or more substitutions binding its
free variables — the same interface resolution uses for ordinary relations,
so the inference strategies treat both uniformly.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Iterator

from repro.common.errors import EvaluationError
from repro.logic.terms import Atom, Const, Substitution, Var

#: A built-in evaluator: (atom, substitution) -> iterable of substitutions.
BuiltinFn = Callable[[Atom, Substitution], Iterable[Substitution]]

_COMPARISONS: dict[str, Callable[[object, object], bool]] = {
    "<": operator.lt,
    ">": operator.gt,
    "=<": operator.le,
    ">=": operator.ge,
}


class BuiltinRegistry:
    """Maps predicate signatures to evaluators.

    The default registry contains the numeric comparisons, ``=``/``\\=``,
    and a few arithmetic relations (``plus/3``, ``times/3``, ``abs/2``).
    """

    def __init__(self) -> None:
        self._table: dict[tuple[str, int], BuiltinFn] = {}
        self._install_defaults()

    def register(self, pred: str, arity: int, fn: BuiltinFn) -> None:
        """Register (or replace) the evaluator for ``pred/arity``."""
        self._table[(pred, arity)] = fn

    def is_builtin(self, atom: Atom) -> bool:
        """True when an evaluator exists for the atom's signature."""
        return atom.signature in self._table

    def evaluate(self, atom: Atom, subst: Substitution) -> Iterator[Substitution]:
        """Run the evaluator; raises :class:`EvaluationError` if unknown."""
        fn = self._table.get(atom.signature)
        if fn is None:
            raise EvaluationError(f"no built-in registered for {atom.pred}/{atom.arity}")
        yield from fn(atom, subst)

    # -- default evaluators ----------------------------------------------------
    def _install_defaults(self) -> None:
        for symbol, op in _COMPARISONS.items():
            self.register(symbol, 2, _comparison(symbol, op))
        self.register("=", 2, _eval_equals)
        self.register("\\=", 2, _eval_not_equals)
        self.register("plus", 3, _arith3("plus", operator.add, operator.sub))
        self.register("times", 3, _arith3("times", operator.mul, _safe_div))
        self.register("abs", 2, _eval_abs)


def _require_ground(atom: Atom, subst: Substitution) -> list[object]:
    values = []
    for arg in atom.args:
        term = subst.apply_term(arg)
        if isinstance(term, Var):
            raise EvaluationError(f"built-in {atom.pred}/{atom.arity} needs ground arguments, got {atom}")
        values.append(term.value)
    return values


def _comparison(symbol: str, op: Callable[[object, object], bool]) -> BuiltinFn:
    def evaluate(atom: Atom, subst: Substitution) -> Iterator[Substitution]:
        left, right = _require_ground(atom, subst)
        try:
            holds = op(left, right)
        except TypeError as exc:
            raise EvaluationError(f"cannot compare {left!r} {symbol} {right!r}") from exc
        if holds:
            yield subst

    return evaluate


def _eval_equals(atom: Atom, subst: Substitution) -> Iterator[Substitution]:
    left = subst.apply_term(atom.args[0])
    right = subst.apply_term(atom.args[1])
    if isinstance(left, Var):
        if isinstance(right, Var):
            yield subst.bind(left, right)
        else:
            yield subst.bind(left, right)
        return
    if isinstance(right, Var):
        yield subst.bind(right, left)
        return
    if left.value == right.value:
        yield subst


def _eval_not_equals(atom: Atom, subst: Substitution) -> Iterator[Substitution]:
    left, right = _require_ground(atom, subst)
    if left != right:
        yield subst


def _arith3(name: str, forward: Callable, inverse: Callable) -> BuiltinFn:
    """An invertible three-place arithmetic relation.

    ``name(A, B, C)`` holds when ``forward(A, B) == C``.  Any single unbound
    argument is solved for; with all arguments bound it acts as a check.
    """

    def evaluate(atom: Atom, subst: Substitution) -> Iterator[Substitution]:
        terms = [subst.apply_term(a) for a in atom.args]
        unbound = [i for i, t in enumerate(terms) if isinstance(t, Var)]
        if len(unbound) > 1:
            raise EvaluationError(f"{name}/3 needs at least two bound arguments, got {atom}")
        try:
            if not unbound:
                a, b, c = (t.value for t in terms)
                if forward(a, b) == c:
                    yield subst
                return
            index = unbound[0]
            if index == 2:
                value = forward(terms[0].value, terms[1].value)
            elif index == 1:
                value = inverse(terms[2].value, terms[0].value)
            else:
                value = inverse(terms[2].value, terms[1].value)
        except TypeError as exc:
            raise EvaluationError(f"non-numeric arguments to {name}/3: {atom}") from exc
        yield subst.bind(terms[unbound[0]], Const(value))

    return evaluate


def _safe_div(a: object, b: object) -> object:
    if b == 0:
        raise EvaluationError("division by zero while inverting times/3")
    return a / b  # type: ignore[operator]


def _eval_abs(atom: Atom, subst: Substitution) -> Iterator[Substitution]:
    source = subst.apply_term(atom.args[0])
    target = subst.apply_term(atom.args[1])
    if isinstance(source, Var):
        raise EvaluationError(f"abs/2 needs a bound first argument, got {atom}")
    value = abs(source.value)  # type: ignore[arg-type]
    if isinstance(target, Var):
        yield subst.bind(target, Const(value))
    elif target.value == value:
        yield subst


#: Shared default registry; knowledge bases copy it so local registrations
#: never leak between independent systems.
DEFAULT_BUILTINS = BuiltinRegistry()
