"""A small Datalog/Prolog-style parser for rules, facts, and queries.

Grammar (informally)::

    program  := clause*
    clause   := atom '.'                      (fact)
              | atom ':-' literals '.'       (rule)
    literals := literal (',' literal)*
    literal  := '\\+' atom | atom | comparison
    atom     := NAME '(' term (',' term)* ')' | NAME
    term     := VARIABLE | NAME | NUMBER | STRING
    comparison := term OP term                (OP in <, >, =<, >=, =, \\=)

Names starting with a lowercase letter are constants/predicate symbols;
names starting with an uppercase letter or ``_`` are variables.  Comparison
literals become atoms whose predicate is the operator symbol, which the
evaluable-builtin registry (:mod:`repro.logic.builtins`) knows how to run.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import ParseError
from repro.logic.terms import Atom, Const, Term, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>       \s+ | \%[^\n]* )
  | (?P<ARROW>    :- )
  | (?P<NAF>      \\\+ )
  | (?P<OP>       =<|>=|\\=|!=|<|>|= )
  | (?P<NUMBER>   -?\d+\.\d+ | -?\d+ )
  | (?P<STRING>   '(?:[^'\\]|\\.)*' | "(?:[^"\\]|\\.)*" )
  | (?P<NAME>     [a-z][A-Za-z0-9_]* )
  | (?P<VARIABLE> [A-Z_][A-Za-z0-9_]* )
  | (?P<PUNCT>    [(),.] )
    """,
    re.VERBOSE,
)

#: Comparison operators normalized to a canonical predicate symbol.
_CANONICAL_OP = {"=<": "=<", ">=": ">=", "<": "<", ">": ">", "=": "=", "\\=": "\\=", "!=": "\\="}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token: kind, text, and source offset."""
    kind: str
    text: str
    position: int


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; raises :class:`ParseError` on unrecognized input."""
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unrecognized character", text=text, position=position)
        kind = match.lastgroup
        assert kind is not None
        if kind != "WS":
            yield Token(kind, match.group(), position)
        position = match.end()


@dataclass(frozen=True, slots=True)
class Clause:
    """A parsed clause: a fact (empty body) or a rule."""

    head: Atom
    body: tuple[Atom, ...] = ()

    @property
    def is_fact(self) -> bool:
        """True when the clause has no body."""
        return not self.body

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        body = ", ".join(str(b) for b in self.body)
        return f"{self.head} :- {body}."


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = list(tokenize(text))
        self._index = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", text=self._text, position=len(self._text))
        self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}",
                text=self._text,
                position=token.position,
            )
        return token

    def _at(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind and (text is None or token.text == text)

    # -- grammar --------------------------------------------------------------
    def parse_program(self) -> list[Clause]:
        clauses = []
        while self._peek() is not None:
            clauses.append(self.parse_clause())
        return clauses

    def parse_clause(self) -> Clause:
        head = self.parse_atom()
        if self._at("PUNCT", "."):
            self._next()
            return Clause(head)
        self._expect("ARROW")
        body = [self.parse_literal()]
        while self._at("PUNCT", ","):
            self._next()
            body.append(self.parse_literal())
        self._expect("PUNCT", ".")
        return Clause(head, tuple(body))

    def parse_literal(self) -> Atom:
        if self._at("NAF"):
            self._next()
            atom = self.parse_atom()
            return Atom(atom.pred, atom.args, negated=True)
        # Could be an atom, or a comparison starting with a term.
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", text=self._text, position=len(self._text))
        if token.kind == "NAME":
            after = self._tokens[self._index + 1] if self._index + 1 < len(self._tokens) else None
            if after is not None and after.kind == "OP":
                return self._parse_comparison()
            return self.parse_atom()
        return self._parse_comparison()

    def _parse_comparison(self) -> Atom:
        left = self.parse_term()
        op_token = self._expect("OP")
        right = self.parse_term()
        return Atom(_CANONICAL_OP[op_token.text], (left, right))

    def parse_atom(self) -> Atom:
        name = self._expect("NAME").text
        if not self._at("PUNCT", "("):
            return Atom(name, ())
        self._next()
        args = [self.parse_term()]
        while self._at("PUNCT", ","):
            self._next()
            args.append(self.parse_term())
        self._expect("PUNCT", ")")
        return Atom(name, tuple(args))

    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "VARIABLE":
            return Var(token.text)
        if token.kind == "NAME":
            return Const(token.text)
        if token.kind == "NUMBER":
            text = token.text
            return Const(float(text) if "." in text else int(text))
        if token.kind == "STRING":
            raw = token.text[1:-1]
            return Const(raw.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\"))
        raise ParseError(
            f"expected a term, found {token.text!r}",
            text=self._text,
            position=token.position,
        )

    def at_end(self) -> bool:
        return self._peek() is None


def parse_program(text: str) -> list[Clause]:
    """Parse a whole program (facts and rules terminated by ``.``)."""
    return _Parser(text).parse_program()


def parse_clause(text: str) -> Clause:
    """Parse exactly one clause."""
    parser = _Parser(text)
    clause = parser.parse_clause()
    if not parser.at_end():
        raise ParseError("trailing input after clause", text=text)
    return clause


def parse_atom(text: str) -> Atom:
    """Parse a single atom (no trailing period), e.g. an AI query."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if parser._at("PUNCT", "."):
        parser._next()
    if not parser.at_end():
        raise ParseError("trailing input after atom", text=text)
    return atom


def parse_literals(text: str) -> list[Atom]:
    """Parse a comma-separated conjunction of literals (a query body)."""
    parser = _Parser(text)
    literals = [parser.parse_literal()]
    while parser._at("PUNCT", ","):
        parser._next()
        literals.append(parser.parse_literal())
    if parser._at("PUNCT", "."):
        parser._next()
    if not parser.at_end():
        raise ParseError("trailing input after literals", text=text)
    return literals
