"""Relational substrate: schemas, relations, generators, indexes, operators."""

from repro.relational.expressions import (
    Col,
    Comparison,
    Lit,
    col_eq,
    compile_conjunction,
    eq,
)
from repro.relational.generator import (
    GeneratorRelation,
    generator_from_relation,
    generator_from_rows,
)
from repro.relational.index import HashIndex, IndexSet
from repro.relational.operators import (
    aggregate,
    cross,
    difference,
    intersection,
    join,
    join_iter,
    project,
    project_iter,
    select,
    select_iter,
    select_via_index,
    transitive_closure,
    union,
)
from repro.relational.relation import Relation, relation_from_columns
from repro.relational.schema import Schema, generic_schema
from repro.relational.statistics import (
    AttributeStats,
    RelationStatistics,
    estimate_join_size,
)

__all__ = [
    "AttributeStats",
    "Col",
    "Comparison",
    "GeneratorRelation",
    "HashIndex",
    "IndexSet",
    "Lit",
    "Relation",
    "RelationStatistics",
    "Schema",
    "aggregate",
    "col_eq",
    "compile_conjunction",
    "cross",
    "difference",
    "eq",
    "estimate_join_size",
    "generator_from_relation",
    "generator_from_rows",
    "generic_schema",
    "intersection",
    "join",
    "join_iter",
    "project",
    "project_iter",
    "relation_from_columns",
    "select",
    "select_iter",
    "select_via_index",
    "transitive_closure",
    "union",
]
