"""Relation extensions: a schema plus a concrete set of rows.

This is the *extension* representation of Section 5.1 of the paper.  The
*generator* representation lives in :mod:`repro.relational.generator`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.common.errors import SchemaError
from repro.relational.schema import Schema


class Relation:
    """An in-memory relation: schema + rows (set semantics, stable order).

    Rows are tuples whose length must match the schema arity.  Duplicate
    rows are silently dropped; insertion order of first occurrences is
    preserved so results are deterministic.
    """

    __slots__ = ("schema", "_rows", "_row_set")

    def __init__(self, schema: Schema, rows: Iterable[tuple] = ()):
        self.schema = schema
        self._rows: list[tuple] = []
        self._row_set: set[tuple] = set()
        for row in rows:
            self.insert(row)

    # -- mutation ---------------------------------------------------------------
    def insert(self, row: tuple) -> bool:
        """Add a row; returns True if it was new."""
        if not isinstance(row, tuple):
            row = tuple(row)
        if len(row) != self.schema.arity:
            raise SchemaError(
                f"row arity {len(row)} does not match schema {self.schema} "
                f"(arity {self.schema.arity})"
            )
        if row in self._row_set:
            return False
        self._rows.append(row)
        self._row_set.add(row)
        return True

    def insert_all(self, rows: Iterable[tuple]) -> int:
        """Add many rows; returns how many were new."""
        return sum(self.insert(row) for row in rows)

    @classmethod
    def from_distinct_rows(cls, schema: Schema, rows: list[tuple]) -> "Relation":
        """Adopt rows known to be distinct tuples of the right arity.

        This is the columnar engine's materialization exit: batch kernels
        preserve distinctness structurally, so the per-row membership and
        arity checks of :meth:`insert` would be pure overhead.  The claim
        is audited, not assumed — ``check_invariants`` on the stream (and
        the differential fuzzer's post-query audits) still verify it.
        """
        out = cls.__new__(cls)
        out.schema = schema
        out._rows = rows
        out._row_set = set(rows)
        return out

    # -- access --------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self._row_set

    def __eq__(self, other: object) -> bool:
        """Set equality: same schema attributes and same rows, any order."""
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.schema.attributes == other.schema.attributes
            and self._row_set == other._row_set
        )

    def __hash__(self):  # pragma: no cover - relations are mutable
        raise TypeError("Relation is mutable and unhashable")

    def __repr__(self) -> str:
        return f"Relation({self.schema}, {len(self)} rows)"

    @property
    def rows(self) -> list[tuple]:
        """The rows, in stable order (a copy; mutate via insert only)."""
        return list(self._rows)

    def column(self, attribute: str) -> list[object]:
        """All values of one attribute, in row order (with duplicates)."""
        position = self.schema.position(attribute)
        return [row[position] for row in self._rows]

    def distinct_values(self, attribute: str) -> set[object]:
        """The set of distinct values of one attribute."""
        position = self.schema.position(attribute)
        return {row[position] for row in self._rows}

    def sorted_by(self, attributes: list[str] | tuple[str, ...], reverse: bool = False) -> "Relation":
        """A new relation with rows ordered by the given attributes."""
        positions = self.schema.positions(tuple(attributes))
        ordered = sorted(self._rows, key=lambda row: tuple(row[i] for i in positions), reverse=reverse)
        return Relation(self.schema, ordered)

    def renamed(self, name: str) -> "Relation":
        """The same rows under a renamed schema (rows are shared)."""
        out = Relation.__new__(Relation)
        out.schema = self.schema.renamed(name)
        out._rows = self._rows
        out._row_set = self._row_set
        return out

    def copy(self) -> "Relation":
        """An independent copy (mutations do not propagate)."""
        return Relation(self.schema, self._rows)

    def estimated_bytes(self) -> int:
        """A coarse size estimate used for cache capacity accounting.

        Counts 8 bytes per field plus 16 per string character beyond 8.
        Precision does not matter; monotonicity with actual size does.
        """
        total = 0
        for row in self._rows:
            total += 8 * len(row)
            for value in row:
                if isinstance(value, str) and len(value) > 8:
                    total += 2 * (len(value) - 8)
        return total

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width text rendering (for examples and debugging)."""
        header = list(self.schema.attributes)
        shown = self._rows[:limit]
        cells = [[str(v) for v in row] for row in shown]
        widths = [len(h) for h in header]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)


def relation_from_columns(name: str, /, **columns: list) -> Relation:
    """Build a relation from parallel column lists (test/workload helper)."""
    if not columns:
        raise SchemaError("need at least one column")
    lengths = {len(values) for values in columns.values()}
    if len(lengths) != 1:
        raise SchemaError(f"column lengths differ: {sorted(lengths)}")
    schema = Schema(name, tuple(columns))
    rows = zip(*columns.values())
    return Relation(schema, rows)
