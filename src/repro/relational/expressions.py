"""Row-level predicates and scalar expressions over relation rows.

Conditions are built from attribute references and literals combined with
comparison operators; conjunctions of these form the selection/join
conditions of PSJ queries.  Each condition compiles against a schema to a
fast row predicate.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Sequence, Union

from repro.common.errors import SchemaError
from repro.relational.schema import Schema

_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

#: Operator with both sides swapped (for normalization).
FLIPPED = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}

#: The negation of each operator.
NEGATED = {"=": "!=", "!=": "=", "<": ">=", ">": "<=", "<=": ">", ">=": "<"}


@dataclass(frozen=True, slots=True)
class Col:
    """A reference to an attribute by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Lit:
    """A literal value."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Operand = Union[Col, Lit]


@dataclass(frozen=True, slots=True)
class Comparison:
    """``left op right`` where the operands are columns or literals."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SchemaError(f"unknown comparison operator {self.op!r}")

    def normalized(self) -> "Comparison":
        """Constant, if any, on the right; column names ordered on col-col.

        Normalization makes structural equality of conditions meaningful,
        which the subsumption checker relies on.
        """
        left, op, right = self.left, self.op, self.right
        if isinstance(left, Lit) and isinstance(right, Col):
            left, op, right = right, FLIPPED[op], left
        elif isinstance(left, Col) and isinstance(right, Col) and right.name < left.name:
            left, op, right = right, FLIPPED[op], left
        return Comparison(left, op, right)

    def negated(self) -> "Comparison":
        """The logically complementary condition."""
        return Comparison(self.left, NEGATED[self.op], self.right)

    def columns(self) -> set[str]:
        """The column names this condition references."""
        cols = set()
        if isinstance(self.left, Col):
            cols.add(self.left.name)
        if isinstance(self.right, Col):
            cols.add(self.right.name)
        return cols

    def is_col_const(self) -> bool:
        """True for ``column op literal`` (after normalization)."""
        norm = self.normalized()
        return isinstance(norm.left, Col) and isinstance(norm.right, Lit)

    def is_col_col(self) -> bool:
        """True for a condition between two columns."""
        return isinstance(self.left, Col) and isinstance(self.right, Col)

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        """A fast row predicate bound to attribute positions of ``schema``."""
        op = _OPS[self.op]
        left = self._operand_getter(self.left, schema)
        right = self._operand_getter(self.right, schema)

        def predicate(row: tuple) -> bool:
            try:
                return op(left(row), right(row))
            except TypeError:
                return False

        return predicate

    @staticmethod
    def _operand_getter(operand: Operand, schema: Schema) -> Callable[[tuple], object]:
        if isinstance(operand, Col):
            position = schema.position(operand.name)
            return operator.itemgetter(position)
        value = operand.value
        return lambda _row: value

    def rename_columns(self, mapping: dict[str, str]) -> "Comparison":
        """A copy with column names translated through ``mapping``."""

        def translate(operand: Operand) -> Operand:
            if isinstance(operand, Col):
                return Col(mapping.get(operand.name, operand.name))
            return operand

        return Comparison(translate(self.left), self.op, translate(self.right))

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def holds(left: object, op: str, right: object) -> bool:
    """Evaluate ``left op right`` on concrete values (False on type clash)."""
    try:
        return _OPS[op](left, right)
    except TypeError:
        return False


def eq(column: str, value: object) -> Comparison:
    """Shorthand for ``Col(column) = Lit(value)``."""
    return Comparison(Col(column), "=", Lit(value))


def col_eq(left: str, right: str) -> Comparison:
    """Shorthand for an equi-join condition between two columns."""
    return Comparison(Col(left), "=", Col(right))


def compile_conjunction(
    conditions: Sequence[Comparison], schema: Schema
) -> Callable[[tuple], bool]:
    """A row predicate that is the AND of every condition."""
    if not conditions:
        return lambda _row: True
    compiled = [c.compile(schema) for c in conditions]
    if len(compiled) == 1:
        return compiled[0]

    def predicate(row: tuple) -> bool:
        return all(check(row) for check in compiled)

    return predicate
