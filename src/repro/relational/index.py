"""Hash indexes over relation extensions.

Section 5.4: the Query Processor "uses hash indices when available to speed
up joins and some selections"; Section 4.2.1: consumer annotations in advice
mark attributes as "prime candidates for indexing".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.relational.relation import Relation


class HashIndex:
    """A hash index on one or more attributes of a relation extension.

    The index is built once from the relation's current rows; callers that
    mutate the relation afterwards must rebuild (cache elements are
    immutable once cached, so this suits the CMS).
    """

    __slots__ = ("attributes", "_positions", "_buckets", "_probes", "_source_len")

    def __init__(self, relation: Relation, attributes: tuple[str, ...] | list[str]):
        self.attributes = tuple(attributes)
        self._positions = relation.schema.positions(self.attributes)
        self._buckets: dict[tuple, list[tuple]] = defaultdict(list)
        for row in relation:
            key = tuple(row[i] for i in self._positions)
            self._buckets[key].append(row)
        self._probes = 0
        self._source_len = len(relation)

    def lookup(self, values: tuple) -> list[tuple]:
        """Rows whose indexed attributes equal ``values``."""
        if not isinstance(values, tuple):
            values = (values,)
        self._probes += 1
        return list(self._buckets.get(values, ()))

    def lookup_iter(self, values: tuple) -> Iterator[tuple]:
        """Iterator form of :meth:`lookup` (for lazy pipelines)."""
        yield from self.lookup(values)

    def __contains__(self, values: tuple) -> bool:
        if not isinstance(values, tuple):
            values = (values,)
        return values in self._buckets

    @property
    def probe_count(self) -> int:
        """How many lookups have been answered (metrics)."""
        return self._probes

    @property
    def key_count(self) -> int:
        """Number of distinct key values."""
        return len(self._buckets)

    @property
    def build_size(self) -> int:
        """How many rows were indexed (for cost accounting)."""
        return self._source_len

    def __repr__(self) -> str:
        return f"HashIndex(on={self.attributes}, keys={self.key_count})"


class IndexSet:
    """The collection of indexes maintained for one cached relation."""

    __slots__ = ("_relation", "_indexes")

    def __init__(self, relation: Relation):
        self._relation = relation
        self._indexes: dict[tuple[str, ...], HashIndex] = {}

    def ensure(self, attributes: tuple[str, ...] | list[str]) -> HashIndex:
        """Return the index on ``attributes``, building it if absent."""
        key = tuple(attributes)
        index = self._indexes.get(key)
        if index is None:
            index = HashIndex(self._relation, key)
            self._indexes[key] = index
        return index

    def get(self, attributes: tuple[str, ...] | list[str]) -> HashIndex | None:
        """The existing index on ``attributes``, or None."""
        return self._indexes.get(tuple(attributes))

    def find_covering(self, attributes: set[str]) -> HashIndex | None:
        """An existing index whose key is a subset of ``attributes``.

        Such an index can answer an equality selection on ``attributes``
        with a probe plus residual filtering.  Prefers the widest key.
        """
        best: HashIndex | None = None
        for key, index in self._indexes.items():
            if set(key) <= attributes and (best is None or len(key) > len(best.attributes)):
                best = index
        return best

    @property
    def attribute_sets(self) -> list[tuple[str, ...]]:
        """Key attribute tuples of every maintained index."""
        return list(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)
