"""Generator (lazy) representation of relations.

Section 5.1 of the paper: "The CMS represents a relation as either the full
extension of the relation or as a *generator* which produces a single tuple
on demand."  A :class:`GeneratorRelation` wraps a pull-based pipeline:

* tuples are produced one at a time as the consumer asks for them;
* produced tuples are **memoized**, so several readers (the paper's
  "co-existing uses") share one underlying computation;
* the generator can be **promoted** to a full extension at any time by
  draining it, which is how the CMS converts a lazy element to an eager one
  when an index is wanted.

Duplicate elimination matches :class:`Relation`: the memoized prefix is a
set-semantics relation, so a generator never yields the same row twice.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: A factory producing a fresh row iterator (so generators can be restarted).
RowSource = Callable[[], Iterator[tuple]]


class GeneratorRelation:
    """A lazily evaluated relation with a memoized prefix."""

    __slots__ = (
        "schema",
        "_source",
        "_iterator",
        "_memo",
        "_exhausted",
        "on_produce",
        "on_exhausted",
    )

    def __init__(self, schema: Schema, source: RowSource):
        self.schema = schema
        self._source = source
        self._iterator: Iterator[tuple] | None = None
        self._memo = Relation(schema)
        self._exhausted = False
        #: Optional callback fired for each newly produced row (metrics hook).
        self.on_produce: Callable[[tuple], None] | None = None
        #: Optional callback fired once when the source drains (the cache
        #: uses it to release pins held for the stream's lifetime).
        self.on_exhausted: Callable[[], None] | None = None

    # -- production -------------------------------------------------------------
    def _pull(self) -> tuple | None:
        """Produce one new (deduplicated) row, or None when exhausted."""
        if self._exhausted:
            return None
        if self._iterator is None:
            self._iterator = self._source()
        for row in self._iterator:
            if not isinstance(row, tuple):
                row = tuple(row)
            if self._memo.insert(row):
                if self.on_produce is not None:
                    self.on_produce(row)
                return row
        self._exhausted = True
        self._iterator = None
        if self.on_exhausted is not None:
            callback, self.on_exhausted = self.on_exhausted, None
            callback()
        return None

    def __iter__(self) -> Iterator[tuple]:
        """Iterate over all rows, producing lazily past the memoized prefix.

        Multiple concurrent iterators are safe: each replays the shared
        memo first, then pulls new rows (which extend the memo for all).
        """
        index = 0
        while True:
            prefix = self._memo.rows
            while index < len(prefix):
                yield prefix[index]
                index += 1
            if self._exhausted:
                return
            row = self._pull()
            if row is None:
                return
            # The pulled row landed in the memo; the outer loop re-reads it
            # so concurrent producers are replayed in a consistent order.

    def take(self, n: int) -> list[tuple]:
        """The first ``n`` rows (producing only as many as needed)."""
        out = []
        for row in self:
            out.append(row)
            if len(out) >= n:
                break
        return out

    # -- state ----------------------------------------------------------------------
    @property
    def produced_count(self) -> int:
        """How many rows have actually been computed so far."""
        return len(self._memo)

    @property
    def exhausted(self) -> bool:
        """True once the underlying source has been fully drained."""
        return self._exhausted

    def to_extension(self) -> Relation:
        """Drain the generator and return the full extension.

        The memo *is* the extension afterwards, so this is idempotent and
        costs nothing the second time.
        """
        while self._pull() is not None:
            pass
        return self._memo

    def restart(self) -> None:
        """Forget all memoized rows and recompute from the source."""
        self._memo = Relation(self.schema)
        self._iterator = None
        self._exhausted = False


def generator_from_rows(schema: Schema, rows: list[tuple]) -> GeneratorRelation:
    """A generator over a fixed row list (mostly for tests)."""
    return GeneratorRelation(schema, lambda: iter(list(rows)))


def generator_from_relation(relation: Relation) -> GeneratorRelation:
    """A generator view of an existing extension."""
    return GeneratorRelation(relation.schema, lambda: iter(relation.rows))
