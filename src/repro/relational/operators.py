"""Relational algebra operators, in eager and pipelined (lazy) forms.

Eager operators map :class:`Relation` to :class:`Relation`.  Each has a
pipelined twin (``*_iter``) operating on row iterators, used to assemble the
generator representations of Section 5.1: a lazy cache element is a
:class:`~repro.relational.generator.GeneratorRelation` whose source is a
composition of these iterator stages.

All operators use set semantics (matching :class:`Relation`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.common.errors import EvaluationError, SchemaError
from repro.relational.expressions import Comparison, compile_conjunction
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.schema import Schema

# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------


def select(relation: Relation, conditions: Sequence[Comparison]) -> Relation:
    """Rows of ``relation`` satisfying every condition."""
    predicate = compile_conjunction(conditions, relation.schema)
    return Relation(relation.schema, (row for row in relation if predicate(row)))


def select_iter(
    rows: Iterable[tuple], schema: Schema, conditions: Sequence[Comparison]
) -> Iterator[tuple]:
    """Pipelined selection."""
    predicate = compile_conjunction(conditions, schema)
    return (row for row in rows if predicate(row))


def select_via_index(
    relation: Relation, index: HashIndex, values: tuple, residual: Sequence[Comparison] = ()
) -> Relation:
    """Index-assisted equality selection with optional residual filter."""
    rows = index.lookup(values)
    if residual:
        predicate = compile_conjunction(residual, relation.schema)
        rows = (row for row in rows if predicate(row))
    return Relation(relation.schema, rows)


# ---------------------------------------------------------------------------
# projection
# ---------------------------------------------------------------------------


def project(relation: Relation, attributes: Sequence[str], name: str | None = None) -> Relation:
    """Projection onto ``attributes`` (duplicates eliminated)."""
    schema = relation.schema.project(tuple(attributes), name)
    positions = relation.schema.positions(tuple(attributes))
    return Relation(schema, (tuple(row[i] for i in positions) for row in relation))


def project_iter(
    rows: Iterable[tuple], schema: Schema, attributes: Sequence[str]
) -> Iterator[tuple]:
    """Pipelined projection with streaming duplicate elimination."""
    positions = schema.positions(tuple(attributes))
    seen: set[tuple] = set()
    for row in rows:
        out = tuple(row[i] for i in positions)
        if out not in seen:
            seen.add(out)
            yield out


# ---------------------------------------------------------------------------
# join
# ---------------------------------------------------------------------------


def join(
    left: Relation,
    right: Relation,
    pairs: Sequence[tuple[str, str]],
    name: str = "join",
    conditions: Sequence[Comparison] = (),
) -> Relation:
    """Equi-join on ``pairs`` of (left attribute, right attribute).

    Implemented as a hash join with the smaller side as the build input.
    ``conditions`` are extra predicates evaluated on the combined schema.
    An empty ``pairs`` degenerates to a (filtered) cross product.
    """
    schema = left.schema.concat(right.schema, name)
    if not pairs:
        combined = (l + r for l in left for r in right)
    else:
        left_positions = left.schema.positions(tuple(p[0] for p in pairs))
        right_positions = right.schema.positions(tuple(p[1] for p in pairs))
        if len(left) <= len(right):
            table: dict[tuple, list[tuple]] = {}
            for row in left:
                table.setdefault(tuple(row[i] for i in left_positions), []).append(row)
            combined = (
                l + r
                for r in right
                for l in table.get(tuple(r[i] for i in right_positions), ())
            )
        else:
            table = {}
            for row in right:
                table.setdefault(tuple(row[i] for i in right_positions), []).append(row)
            combined = (
                l + r
                for l in left
                for r in table.get(tuple(l[i] for i in left_positions), ())
            )
    if conditions:
        predicate = compile_conjunction(conditions, schema)
        combined = (row for row in combined if predicate(row))
    return Relation(schema, combined)


def join_iter(
    left_rows: Iterable[tuple],
    left_schema: Schema,
    right: Relation,
    pairs: Sequence[tuple[str, str]],
    conditions: Sequence[Comparison] = (),
    name: str = "join",
) -> Iterator[tuple]:
    """Pipelined join: streams the left input, hashes the right relation.

    The right side must be an extension (the paper's lazy evaluation only
    applies when all inputs are cached).  The hash table on the right is
    built on the first pulled row, so an unconsumed pipeline costs nothing.
    """
    schema = left_schema.concat(right.schema, name)
    predicate = compile_conjunction(conditions, schema) if conditions else None
    left_positions = left_schema.positions(tuple(p[0] for p in pairs)) if pairs else ()
    table: dict[tuple, list[tuple]] | None = None

    for l in left_rows:
        if table is None:
            table = {}
            if pairs:
                right_positions = right.schema.positions(tuple(p[1] for p in pairs))
                for row in right:
                    table.setdefault(tuple(row[i] for i in right_positions), []).append(row)
            else:
                table[()] = right.rows
        key = tuple(l[i] for i in left_positions)
        for r in table.get(key, ()):
            out = l + r
            if predicate is None or predicate(out):
                yield out


def cross(left: Relation, right: Relation, name: str = "cross") -> Relation:
    """Cross product."""
    return join(left, right, (), name)


# ---------------------------------------------------------------------------
# set operations
# ---------------------------------------------------------------------------


def _check_compatible(left: Relation, right: Relation, op: str) -> None:
    if left.schema.arity != right.schema.arity:
        raise SchemaError(
            f"{op}: arity mismatch ({left.schema.arity} vs {right.schema.arity})"
        )


def union(left: Relation, right: Relation) -> Relation:
    """Set union (schema of the left operand)."""
    _check_compatible(left, right, "union")
    out = Relation(left.schema, left)
    out.insert_all(iter(right))
    return out


def difference(left: Relation, right: Relation) -> Relation:
    """Rows of ``left`` not in ``right``."""
    _check_compatible(left, right, "difference")
    exclude = set(iter(right))
    return Relation(left.schema, (row for row in left if row not in exclude))


def intersection(left: Relation, right: Relation) -> Relation:
    """Rows in both relations."""
    _check_compatible(left, right, "intersection")
    keep = set(iter(right))
    return Relation(left.schema, (row for row in left if row in keep))


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

_AGG_FNS: dict[str, Callable[[list], object]] = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values),
}


def aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregations: Sequence[tuple[str, str, str]],
    name: str = "agg",
) -> Relation:
    """Group-by aggregation.

    ``aggregations`` is a list of ``(function, attribute, output_name)``;
    functions are count/sum/min/max/avg.  ``count`` ignores its attribute.
    With an empty ``group_by`` the whole relation is one group (and the
    result has exactly one row, even for an empty input when using count).
    """
    for fn, _attr, _out in aggregations:
        if fn not in _AGG_FNS:
            raise EvaluationError(f"unknown aggregate function {fn!r}")
    group_positions = relation.schema.positions(tuple(group_by))
    agg_positions = [
        relation.schema.position(attr) if fn != "count" else -1
        for fn, attr, _out in aggregations
    ]
    groups: dict[tuple, list[tuple]] = {}
    for row in relation:
        key = tuple(row[i] for i in group_positions)
        groups.setdefault(key, []).append(row)
    if not groups and not group_by:
        groups[()] = []

    out_attrs = tuple(group_by) + tuple(out for _fn, _attr, out in aggregations)
    schema = Schema(name, out_attrs)
    rows = []
    for key, members in groups.items():
        values = []
        for (fn, _attr, _out), position in zip(aggregations, agg_positions):
            column = members if fn == "count" else [row[position] for row in members]
            if fn != "count" and not column:
                raise EvaluationError(f"aggregate {fn} over empty group")
            values.append(_AGG_FNS[fn](column))
        rows.append(key + tuple(values))
    return Relation(schema, rows)


# ---------------------------------------------------------------------------
# fixed point (the paper's specialized operator for compiled DAPs)
# ---------------------------------------------------------------------------


def transitive_closure(relation: Relation, name: str = "closure") -> Relation:
    """Transitive closure of a binary relation (semi-naive iteration).

    This is the "fixed point operator" of Section 2, used by compiled
    inference strategies to evaluate recursively-defined relations
    set-at-a-time instead of unfolding rules tuple-at-a-time.
    """
    if relation.schema.arity != 2:
        raise EvaluationError("transitive closure requires a binary relation")
    schema = Schema(name, relation.schema.attributes)
    closure = Relation(schema, relation)
    successors: dict[object, set[object]] = {}
    for a, b in relation:
        successors.setdefault(a, set()).add(b)
    delta = list(closure)
    while delta:
        new_rows = []
        for a, b in delta:
            for c in successors.get(b, ()):
                candidate = (a, c)
                if candidate not in closure:
                    new_rows.append(candidate)
        delta = [row for row in new_rows if closure.insert(row)]
    return closure
