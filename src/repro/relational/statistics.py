"""Cardinality and selectivity statistics.

Section 4.1 of the paper: the problem graph shaper uses "cardinality and
selectivity information from the DBMS schema" to determine
producer-consumer relationships, and the QPO's cost functions (Section
5.3.3) need result-size estimates to choose between cache-side and
remote-side execution.  These are textbook System-R-style estimates:
uniformity and independence assumptions over per-attribute distinct counts
and min/max values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expressions import Col, Comparison, Lit
from repro.relational.relation import Relation

#: Fallback selectivity for predicates we cannot estimate.
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: Fallback selectivity for equality against an unknown distribution.
DEFAULT_EQ_SELECTIVITY = 0.1


@dataclass
class AttributeStats:
    """Per-attribute summary: distinct count and value range."""

    distinct: int = 0
    minimum: object | None = None
    maximum: object | None = None

    def eq_selectivity(self) -> float:
        """Estimated fraction of rows matching an equality on this attribute."""
        if self.distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return 1.0 / self.distinct

    def range_selectivity(self, op: str, value: object) -> float:
        """Fraction of rows passing ``attr op value``, by linear interpolation."""
        lo, hi = self.minimum, self.maximum
        if (
            lo is None
            or hi is None
            or not isinstance(value, (int, float))
            or not isinstance(lo, (int, float))
            or not isinstance(hi, (int, float))
        ):
            return DEFAULT_SELECTIVITY
        if hi == lo:
            if op in ("<", ">"):
                return 0.0 if (value <= lo if op == "<" else value >= lo) else 1.0
            return 1.0 if (lo <= value if op == "<=" else lo >= value) else 0.0
        span = hi - lo
        if op in ("<", "<="):
            fraction = (value - lo) / span
        else:
            fraction = (hi - value) / span
        return min(1.0, max(0.0, fraction))


@dataclass
class RelationStatistics:
    """Statistics for one relation: row count plus per-attribute summaries."""

    cardinality: int = 0
    attributes: dict[str, AttributeStats] = field(default_factory=dict)

    @classmethod
    def from_relation(cls, relation: Relation) -> "RelationStatistics":
        """Exact statistics computed by scanning the relation."""
        stats = cls(cardinality=len(relation))
        for attribute in relation.schema.attributes:
            values = relation.column(attribute)
            attr = AttributeStats(distinct=len(set(values)))
            comparable = [v for v in values if isinstance(v, (int, float))]
            if comparable and len(comparable) == len(values):
                attr.minimum = min(comparable)
                attr.maximum = max(comparable)
            elif values and all(isinstance(v, str) for v in values):
                attr.minimum = min(values)
                attr.maximum = max(values)
            stats.attributes[attribute] = attr
        return stats

    def attribute(self, name: str) -> AttributeStats:
        """Per-attribute summary (empty defaults when unknown)."""
        return self.attributes.get(name, AttributeStats())

    # -- selectivity ---------------------------------------------------------
    def selectivity(self, condition: Comparison) -> float:
        """Estimated fraction of rows satisfying ``condition``."""
        norm = condition.normalized()
        if isinstance(norm.left, Col) and isinstance(norm.right, Lit):
            attr = self.attribute(norm.left.name)
            if norm.op == "=":
                return attr.eq_selectivity()
            if norm.op == "!=":
                return 1.0 - attr.eq_selectivity()
            return attr.range_selectivity(norm.op, norm.right.value)
        if isinstance(norm.left, Col) and isinstance(norm.right, Col):
            if norm.op == "=":
                left = self.attribute(norm.left.name).distinct
                right = self.attribute(norm.right.name).distinct
                biggest = max(left, right)
                return 1.0 / biggest if biggest > 0 else DEFAULT_EQ_SELECTIVITY
            return DEFAULT_SELECTIVITY
        return DEFAULT_SELECTIVITY

    def conjunction_selectivity(self, conditions: list[Comparison]) -> float:
        """Independence-assumption product of per-condition selectivities."""
        product = 1.0
        for condition in conditions:
            product *= self.selectivity(condition)
        return product

    def estimate_selection(self, conditions: list[Comparison]) -> float:
        """Estimated output cardinality of a selection."""
        return self.cardinality * self.conjunction_selectivity(conditions)


def estimate_join_size(
    left: RelationStatistics,
    right: RelationStatistics,
    left_attr: str | None = None,
    right_attr: str | None = None,
) -> float:
    """Estimated size of an equi-join (cross product when no attributes)."""
    if left_attr is None or right_attr is None:
        return float(left.cardinality) * float(right.cardinality)
    distinct = max(left.attribute(left_attr).distinct, right.attribute(right_attr).distinct)
    if distinct <= 0:
        return float(left.cardinality) * float(right.cardinality) * DEFAULT_EQ_SELECTIVITY
    return float(left.cardinality) * float(right.cardinality) / distinct
