"""Relation schemas.

A schema names a relation and its attributes.  Attributes are positional
(rows are plain tuples) but addressable by name; the CMS's cache model and
the remote DBMS's catalog both store schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SchemaError


@dataclass(frozen=True)
class Schema:
    """An ordered list of named attributes for relation ``name``.

    ``key`` optionally lists the attribute names of the primary key; it is
    informational (used by statistics and functional-dependency reasoning),
    not enforced on insert.
    """

    name: str
    attributes: tuple[str, ...]
    key: tuple[str, ...] = ()
    _positions: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not isinstance(self.attributes, tuple):
            object.__setattr__(self, "attributes", tuple(self.attributes))
        if not isinstance(self.key, tuple):
            object.__setattr__(self, "key", tuple(self.key))
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attribute names in schema {self.name!r}: {self.attributes}")
        if not self.attributes:
            raise SchemaError(f"schema {self.name!r} must have at least one attribute")
        for k in self.key:
            if k not in self.attributes:
                raise SchemaError(f"key attribute {k!r} not in schema {self.name!r}")
        object.__setattr__(
            self, "_positions", {attr: i for i, attr in enumerate(self.attributes)}
        )

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Zero-based position of ``attribute``; raises on unknown names."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no attribute {attribute!r} "
                f"(has: {', '.join(self.attributes)})"
            ) from None

    def has(self, attribute: str) -> bool:
        """True when ``attribute`` is part of this schema."""
        return attribute in self._positions

    def positions(self, attributes: tuple[str, ...] | list[str]) -> tuple[int, ...]:
        """Positions for several attributes at once."""
        return tuple(self.position(a) for a in attributes)

    def renamed(self, name: str) -> "Schema":
        """The same attributes under a different relation name."""
        return Schema(name, self.attributes, self.key)

    def project(self, attributes: tuple[str, ...] | list[str], name: str | None = None) -> "Schema":
        """A schema containing only the given attributes, in the given order."""
        for a in attributes:
            self.position(a)  # validates
        return Schema(name or self.name, tuple(attributes))

    def concat(self, other: "Schema", name: str) -> "Schema":
        """Schema of the cross product / join of two relations.

        Name clashes are disambiguated with the source relation name as a
        prefix (``left.x``-style, using ``_`` to stay identifier-safe).
        """
        attrs = list(self.attributes)
        for attr in other.attributes:
            if attr in self._positions:
                attrs.append(f"{other.name}_{attr}")
            else:
                attrs.append(attr)
        if len(set(attrs)) != len(attrs):
            # Prefix both sides when even prefixing one side clashes.
            attrs = [f"{self.name}_{a}" for a in self.attributes] + [
                f"{other.name}_{a}" for a in other.attributes
            ]
        return Schema(name, tuple(attrs))

    def __str__(self) -> str:
        inner = ", ".join(self.attributes)
        return f"{self.name}({inner})"


def generic_schema(name: str, arity: int) -> Schema:
    """A schema with positional attribute names ``a0..a{n-1}``.

    Logic predicates carry no attribute names, so relations materialized
    from CAQL queries use this shape.
    """
    return Schema(name, tuple(f"a{i}" for i in range(arity)))
