"""Columnar batch representation and vectorized kernels.

The tuple-at-a-time engine (:mod:`repro.relational.operators`) pays
per-row Python overhead for every predicate check and every
:meth:`Relation.insert`.  This module is the raw-speed rebuild of ROADMAP
item 3: relations held as **per-attribute columns**, operators as
**batch kernels** that sweep whole columns in tight generated loops, and
CAQL conjuncts **compiled once per plan** into closures instead of being
re-interpreted per row.

Design rules, all load-bearing for correctness:

* **Set semantics are preserved structurally.**  A batch built from a
  :class:`Relation` holds distinct rows; selection and equi-join preserve
  row distinctness (a selected row keeps its identity; a join output row
  is one (left index, right index) pair of distinct inputs), so those
  kernels never re-deduplicate.  Projection can collapse rows and always
  deduplicates.  :meth:`ColumnarBatch.check_invariants` audits the
  distinctness claim — and the differential fuzzer runs it after every
  query, so a kernel that silently produced duplicates cannot survive.
* **Join keys use Python equality.**  The hash table is keyed by raw
  column values, so equal-but-distinct spellings (``1`` vs ``1.0`` vs
  ``True``) land in the same bucket — exactly the equality classes
  :func:`repro.core.rdi.canonical_bindings` dedups by, and exactly what
  the tuple engine's dict-based join does.  Keying by ``(type, repr)``
  would *split* those classes and lose join rows.
* **Compiled predicates are observationally identical to interpreted
  ones.**  The generated code wraps the conjunction in ``try/except
  TypeError`` returning False, matching
  :meth:`repro.relational.expressions.Comparison.compile`; any condition
  the compiler does not support falls back to the interpreter.  The
  hypothesis suite in ``tests/relational/test_columnar_property.py``
  checks equivalence over randomized conjuncts and value soups.

Typed columns: :meth:`ColumnarBatch.compact` converts homogeneous
``int``/``float`` columns to :mod:`array` typed arrays (8 bytes/value,
exposed as zero-copy :func:`memoryview` via
:meth:`ColumnarBatch.memoryview_of`).  ``bool`` is deliberately excluded
— ``array('q')`` would coerce ``True`` to ``1`` and change the value's
type, which the qa row encoding distinguishes.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterator, Sequence

from repro.common.errors import InvariantViolation, SchemaError
from repro.relational.expressions import Col, Comparison, Lit, compile_conjunction
from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = [
    "ColumnarBatch",
    "CompiledConjunction",
    "compile_batch_predicate",
    "compile_stats",
    "hash_join_batch",
    "predicate_cache_size",
    "project_batch",
    "project_entries_batch",
    "reset_predicate_cache",
    "select_batch",
]


# ---------------------------------------------------------------------------
# the batch representation
# ---------------------------------------------------------------------------


class ColumnarBatch:
    """A relation as parallel per-attribute columns (set semantics).

    Columns are plain Python lists (or typed :mod:`array` arrays after
    :meth:`compact`), all the same length; row ``i`` is
    ``tuple(col[i] for col in columns)``.  Rows are distinct — the
    constructors either receive provably distinct rows or deduplicate.
    """

    __slots__ = ("schema", "columns")

    def __init__(self, schema: Schema, columns: list[Sequence]):
        if len(columns) != schema.arity:
            raise SchemaError(
                f"batch for {schema} needs {schema.arity} columns, got {len(columns)}"
            )
        self.schema = schema
        self.columns = columns

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnarBatch":
        """Pivot an extension into columns (rows are already distinct)."""
        columns = list(map(list, zip(*iter(relation))))
        if not columns:  # empty relation: one empty column per attribute
            columns = [[] for _ in relation.schema.attributes]
        return cls(relation.schema, columns)

    @classmethod
    def from_rows(
        cls, schema: Schema, rows, distinct: bool = False
    ) -> "ColumnarBatch":
        """Build from row tuples; deduplicates unless ``distinct`` vouches."""
        rows = [tuple(row) for row in rows]
        for row in rows:
            if len(row) != schema.arity:
                raise SchemaError(
                    f"row arity {len(row)} does not match schema {schema} "
                    f"(arity {schema.arity})"
                )
        if not distinct:
            rows = list(dict.fromkeys(rows))
        columns = list(map(list, zip(*rows)))
        if not columns:
            columns = [[] for _ in schema.attributes]
        return cls(schema, columns)

    def to_relation(self) -> Relation:
        """The batch as a tuple-engine extension (rows stay distinct)."""
        return Relation.from_distinct_rows(self.schema, list(zip(*self.columns)))

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def __iter__(self) -> Iterator[tuple]:
        """Row tuples, lazily — one tuple materialized per pull."""
        return zip(*self.columns)

    @property
    def rows(self) -> list[tuple]:
        """All rows as tuples (a fresh list)."""
        return list(zip(*self.columns))

    def row(self, index: int) -> tuple:
        """One row by position."""
        return tuple(col[index] for col in self.columns)

    def column(self, attribute: str) -> Sequence:
        """One column by attribute name."""
        return self.columns[self.schema.position(attribute)]

    def __eq__(self, other: object) -> bool:
        """Set equality on rows, matching :class:`Relation` semantics."""
        if isinstance(other, ColumnarBatch):
            return (
                self.schema.attributes == other.schema.attributes
                and set(zip(*self.columns)) == set(zip(*other.columns))
            )
        if isinstance(other, Relation):
            return self.to_relation() == other
        return NotImplemented

    def __hash__(self):  # pragma: no cover - batches are mutable
        raise TypeError("ColumnarBatch is mutable and unhashable")

    def __repr__(self) -> str:
        return f"ColumnarBatch({self.schema}, {len(self)} rows)"

    # -- typed columns ---------------------------------------------------------
    def compact(self) -> "ColumnarBatch":
        """Convert homogeneous numeric columns to typed arrays, in place.

        A column of exact ``int`` values (``bool`` excluded — it is an
        ``int`` subclass but a distinct value type) becomes ``array('q')``;
        exact ``float`` becomes ``array('d')``.  Values outside 64-bit
        range keep the column as a plain list.  Returns ``self``.
        """
        for position, column in enumerate(self.columns):
            if isinstance(column, array) or not column:
                continue
            kinds = {type(value) for value in column}
            try:
                if kinds == {int}:
                    self.columns[position] = array("q", column)
                elif kinds == {float}:
                    self.columns[position] = array("d", column)
            except OverflowError:
                continue  # e.g. ints beyond 64 bits: stay a plain list
        return self

    def memoryview_of(self, attribute: str) -> memoryview | None:
        """Zero-copy view of a typed column; None for object columns."""
        column = self.column(attribute)
        if isinstance(column, array):
            return memoryview(column)
        return None

    def estimated_bytes(self) -> int:
        """Size estimate matching :meth:`Relation.estimated_bytes`."""
        total = 0
        for column in self.columns:
            if isinstance(column, array):
                total += 8 * len(column)
                continue
            total += 8 * len(column)
            for value in column:
                if isinstance(value, str) and len(value) > 8:
                    total += 2 * (len(value) - 8)
        return total

    # -- auditing --------------------------------------------------------------
    def check_invariants(self, name: str | None = None) -> None:
        """Audit batch consistency (cheap, read-only).

        Raises :class:`~repro.common.errors.InvariantViolation` on ragged
        columns (unequal lengths), a column-count/arity mismatch, or
        duplicate rows (the structural distinctness claim broken).
        """
        label = name or self.schema.name
        if len(self.columns) != self.schema.arity:
            raise InvariantViolation(
                f"batch {label}: {len(self.columns)} columns but schema "
                f"{self.schema} has arity {self.schema.arity}"
            )
        lengths = {len(column) for column in self.columns}
        if len(lengths) > 1:
            raise InvariantViolation(
                f"batch {label}: ragged columns with lengths {sorted(lengths)}"
            )
        rows = list(zip(*self.columns))
        if len(set(rows)) != len(rows):
            raise InvariantViolation(
                f"batch {label}: {len(rows)} rows but only {len(set(rows))} "
                "distinct — duplicate production"
            )


# ---------------------------------------------------------------------------
# predicate compilation
# ---------------------------------------------------------------------------

#: Literal types the code generator accepts; anything else falls back to
#: the interpreter (arbitrary objects have no stable cache identity).
_SAFE_LITERALS = (int, float, str, bool, type(None))

#: Cache of compiled conjunctions, keyed per (schema attributes, canonical
#: condition keys) — "cached per plan": re-planning the same conjunct over
#: the same schema reuses the closure instead of re-generating code.
_PREDICATE_CACHE: dict[tuple, "CompiledConjunction"] = {}
_PREDICATE_CACHE_LIMIT = 2048

#: Observability for tests and benchmarks.
compile_stats = {"hits": 0, "misses": 0, "fallbacks": 0}


def reset_predicate_cache() -> None:
    """Drop all compiled predicates and zero the counters (test helper)."""
    _PREDICATE_CACHE.clear()
    compile_stats.update(hits=0, misses=0, fallbacks=0)


def predicate_cache_size() -> int:
    """How many compiled conjunctions are currently cached."""
    return len(_PREDICATE_CACHE)


class CompiledConjunction:
    """A conjunction compiled to closures (or interpreter fallbacks).

    ``row`` is a row predicate ``tuple -> bool``; ``filter`` maps a column
    list to the list of selected row indices.  ``fallback`` is True when
    code generation was skipped and both callables wrap the interpreter.
    """

    __slots__ = ("row", "filter", "fallback", "source")

    def __init__(
        self,
        row: Callable[[tuple], bool],
        filter: Callable[[list], list[int]],
        fallback: bool,
        source: str,
    ):
        self.row = row
        self.filter = filter
        self.fallback = fallback
        self.source = source


def _operand_key(operand) -> tuple | None:
    if isinstance(operand, Col):
        return ("col", operand.name)
    if isinstance(operand, Lit):
        value = operand.value
        if type(value) in _SAFE_LITERALS:
            return ("lit", type(value).__name__, repr(value))
    return None


def _conjunction_key(
    conditions: Sequence[Comparison], schema: Schema
) -> tuple | None:
    """A cache key for the conjunction, or None when uncompilable."""
    keys = []
    for condition in conditions:
        if not isinstance(condition, Comparison):
            return None
        left = _operand_key(condition.left)
        right = _operand_key(condition.right)
        if left is None or right is None:
            return None
        for operand in (condition.left, condition.right):
            if isinstance(operand, Col) and not schema.has(operand.name):
                return None  # let the interpreter raise its SchemaError
        keys.append((left, condition.op, right))
    return (schema.attributes, tuple(keys))


#: CAQL comparison operator -> Python source operator.
_PY_OPS = {"=": "==", "!=": "!=", "<": "<", ">": ">", "<=": "<=", ">=": ">="}


def _emit_expression(
    conditions: Sequence[Comparison],
    schema: Schema,
    ref: Callable[[int], str],
    constants: list,
) -> str:
    """The conjunction as a Python expression over ``ref(position)``."""
    terms = []
    for condition in conditions:
        sides = []
        for operand in (condition.left, condition.right):
            if isinstance(operand, Col):
                sides.append(ref(schema.position(operand.name)))
            else:
                constants.append(operand.value)
                sides.append(f"_k{len(constants) - 1}")
        terms.append(f"({sides[0]} {_PY_OPS[condition.op]} {sides[1]})")
    return " and ".join(terms)


def _interpreted(
    conditions: Sequence[Comparison], schema: Schema
) -> CompiledConjunction:
    """The fallback: both callables wrap the tuple-engine interpreter."""
    predicate = compile_conjunction(list(conditions), schema)

    def filter_indices(columns: list) -> list[int]:
        return [i for i, row in enumerate(zip(*columns)) if predicate(row)]

    return CompiledConjunction(predicate, filter_indices, True, "<interpreted>")


def compile_batch_predicate(
    conditions: Sequence[Comparison], schema: Schema
) -> CompiledConjunction:
    """Compile a conjunction against a schema; cached, with fallback.

    The generated row predicate evaluates the whole conjunction inside one
    ``try/except TypeError -> False``, which is observationally identical
    to the interpreter's per-condition handling: a type clash anywhere
    excludes the row either way.  The filter kernel sweeps only the
    referenced columns.
    """
    key = _conjunction_key(conditions, schema)
    if key is None:
        compile_stats["fallbacks"] += 1
        return _interpreted(conditions, schema)
    cached = _PREDICATE_CACHE.get(key)
    if cached is not None:
        compile_stats["hits"] += 1
        return cached
    compile_stats["misses"] += 1

    constants: list = []
    row_expr = _emit_expression(
        conditions, schema, lambda position: f"row[{position}]", constants
    )
    positions = sorted(
        {
            schema.position(operand.name)
            for condition in conditions
            for operand in (condition.left, condition.right)
            if isinstance(operand, Col)
        }
    )
    kernel_constants: list = []
    kernel_expr = _emit_expression(
        conditions, schema, lambda position: f"_v{position}", kernel_constants
    )
    binding = ", ".join(
        f"_k{i}=_CONSTANTS[{i}]" for i in range(len(constants))
    )
    signature = f", {binding}" if binding else ""
    predicate_source = (
        f"def _row_predicate(row{signature}):\n"
        f"    try:\n"
        f"        return {row_expr or 'True'}\n"
        f"    except TypeError:\n"
        f"        return False\n"
    )
    if not positions:
        # Row-independent conjunction (empty, or constant-only terms):
        # evaluate once and keep everything or nothing.
        filter_source = (
            f"def _filter(_columns{signature}):\n"
            f"    try:\n"
            f"        _keep = {kernel_expr or 'True'}\n"
            f"    except TypeError:\n"
            f"        _keep = False\n"
            f"    if not _keep:\n"
            f"        return []\n"
            f"    return list(range(len(_columns[0]) if _columns else 0))\n"
        )
    else:
        if len(positions) == 1:
            loop_vars = f"_v{positions[0]}"
            iterable = f"_columns[{positions[0]}]"
        else:
            loop_vars = "(" + ", ".join(f"_v{p}" for p in positions) + ")"
            iterable = "zip(" + ", ".join(f"_columns[{p}]" for p in positions) + ")"
        filter_source = (
            f"def _filter(_columns{signature}):\n"
            f"    _out = []\n"
            f"    _append = _out.append\n"
            f"    for _i, {loop_vars} in enumerate({iterable}):\n"
            f"        try:\n"
            f"            if {kernel_expr or 'True'}:\n"
            f"                _append(_i)\n"
            f"        except TypeError:\n"
            f"            pass\n"
            f"    return _out\n"
        )
    source = predicate_source + "\n" + filter_source
    namespace = {"_CONSTANTS": tuple(constants)}
    exec(compile(source, "<columnar-predicate>", "exec"), namespace)
    compiled = CompiledConjunction(
        namespace["_row_predicate"], namespace["_filter"], False, source
    )
    if len(_PREDICATE_CACHE) >= _PREDICATE_CACHE_LIMIT:
        _PREDICATE_CACHE.clear()  # bounded memory; recompilation is cheap
    _PREDICATE_CACHE[key] = compiled
    return compiled


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------


def _gather(column: Sequence, indices: list[int]) -> list:
    return list(map(column.__getitem__, indices))


def select_batch(
    batch: ColumnarBatch, conditions: Sequence[Comparison]
) -> ColumnarBatch:
    """Vectorized selection: sweep referenced columns, gather survivors.

    Selection preserves row distinctness, so no deduplication happens.  A
    full selection (every row kept) returns the input batch unchanged —
    batches are treated as immutable.
    """
    if not conditions:
        return batch
    compiled = compile_batch_predicate(conditions, batch.schema)
    indices = compiled.filter(batch.columns)
    if len(indices) == len(batch):
        return batch
    return ColumnarBatch(
        batch.schema, [_gather(column, indices) for column in batch.columns]
    )


def project_batch(
    batch: ColumnarBatch, attributes: Sequence[str], name: str | None = None
) -> ColumnarBatch:
    """Projection with duplicate elimination (first occurrence wins).

    Deduplication is by Python equality on the projected row, matching the
    tuple engine's set semantics (``(1,)`` and ``(1.0,)`` collapse, with
    the earliest spelling as the representative).
    """
    schema = batch.schema.project(tuple(attributes), name)
    positions = batch.schema.positions(tuple(attributes))
    if len(positions) == 1:
        kept = list(dict.fromkeys(batch.columns[positions[0]]))
        return ColumnarBatch(schema, [kept])
    projected = zip(*(batch.columns[p] for p in positions))
    kept = list(dict.fromkeys(projected))
    columns = list(map(list, zip(*kept)))
    if not columns:
        columns = [[] for _ in schema.attributes]
    return ColumnarBatch(schema, columns)


def project_entries_batch(
    batch: ColumnarBatch,
    entries: Sequence[tuple[str, object]],
    schema: Schema,
) -> ColumnarBatch:
    """Projection onto ``("const", value)`` / ``("col", position)`` entries.

    This is the combine-stage final projection (pinned constants allowed),
    with the same first-occurrence duplicate elimination as
    :func:`project_batch`.
    """
    length = len(batch)
    columns = [
        [value] * length if kind == "const" else batch.columns[value]
        for kind, value in entries
    ]
    kept = list(dict.fromkeys(zip(*columns)))
    out = list(map(list, zip(*kept)))
    if not out:
        out = [[] for _ in schema.attributes]
    return ColumnarBatch(schema, out)


def hash_join_batch(
    left: ColumnarBatch,
    right: ColumnarBatch,
    pairs: Sequence[tuple[str, str]],
    name: str = "join",
    conditions: Sequence[Comparison] = (),
) -> ColumnarBatch:
    """Equi-join as an index-pair hash join over key columns.

    The build side is the smaller input; the hash table maps raw key
    values (Python equality — the :func:`~repro.core.rdi.canonical_bindings`
    equality classes, so ``1`` joins ``1.0``) to build-row indices.  The
    output is materialized as gathered index lists, so distinct inputs
    yield distinct outputs without re-deduplication.  Extra ``conditions``
    are applied on the combined schema via the compiled-select kernel.
    An empty ``pairs`` degenerates to a (filtered) cross product.
    """
    schema = left.schema.concat(right.schema, name)
    if not pairs:
        left_indices: list[int] = []
        right_indices: list[int] = []
        count_right = len(right)
        for i in range(len(left)):
            left_indices.extend([i] * count_right)
            right_indices.extend(range(count_right))
    else:
        left_positions = left.schema.positions(tuple(p[0] for p in pairs))
        right_positions = right.schema.positions(tuple(p[1] for p in pairs))
        if len(left) <= len(right):
            build, build_positions = left, left_positions
            probe, probe_positions = right, right_positions
            build_is_left = True
        else:
            build, build_positions = right, right_positions
            probe, probe_positions = left, left_positions
            build_is_left = False
        if len(build_positions) == 1:
            build_keys: Sequence = build.columns[build_positions[0]]
            probe_keys: Sequence = probe.columns[probe_positions[0]]
        else:
            build_keys = list(zip(*(build.columns[p] for p in build_positions)))
            probe_keys = list(zip(*(probe.columns[p] for p in probe_positions)))
        count_build = len(build)
        unique = dict(zip(build_keys, range(count_build)))
        if len(unique) == count_build:
            # Unique build keys (no two collapse into one equality class):
            # key -> single index, so the probe is two C-speed sweeps.
            hits = list(map(unique.get, probe_keys))
            probe_indices = [j for j, hit in enumerate(hits) if hit is not None]
            if len(probe_indices) == len(hits):
                build_indices: list[int] = hits
            else:
                build_indices = _gather(hits, probe_indices)
        else:
            table: dict = {}
            for i, key in enumerate(build_keys):
                table.setdefault(key, []).append(i)
            build_indices = []
            probe_indices = []
            get = table.get
            for j, key in enumerate(probe_keys):
                bucket = get(key)
                if bucket is not None:
                    build_indices.extend(bucket)
                    probe_indices.extend([j] * len(bucket))
        if build_is_left:
            left_indices, right_indices = build_indices, probe_indices
        else:
            left_indices, right_indices = probe_indices, build_indices
    columns = [_gather(column, left_indices) for column in left.columns]
    columns += [_gather(column, right_indices) for column in right.columns]
    combined = ColumnarBatch(schema, columns)
    if conditions:
        combined = select_batch(combined, conditions)
    return combined
