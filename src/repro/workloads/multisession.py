"""Concurrent multi-client workload generation.

Analytic workloads across clients exhibit heavy *semantic repetition*:
different users ask structurally identical (or subsumable) questions
about the same hot data.  This module generates per-client CAQL query
streams with a controlled amount of that repetition:

* a **shared hot pool** of query shapes every client draws from with
  probability ``shared_fraction`` — the cross-session reuse a shared
  cache can exploit and isolated per-client caches cannot;
* a **private pool** per client for the rest — work no other session
  helps with.

Streams target the :func:`~repro.workloads.synthetic.selection_universe`
workload (selections over ``item(id, cat, val)`` with category equality
and value thresholds), and everything is seeded: the same spec yields
the same streams, query by query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.caql.ast import ConjunctiveQuery
from repro.caql.parser import parse_query


@dataclass(frozen=True)
class MultiSessionSpec:
    """Shape parameters for a multi-client query workload."""

    clients: int
    requests_per_client: int = 8
    #: Probability that a request is drawn from the shared hot pool.
    shared_fraction: float = 0.5
    #: Distinct query shapes in the shared hot pool.
    hot_pool_size: int = 8
    #: Distinct query shapes in each client's private pool.
    private_pool_size: int = 12
    #: Value domain of the underlying ``selection_universe`` workload.
    domain: int = 1000
    seed: int = 17
    #: Fraction of the shared hot pool that are ``item ⋈ ord`` join shapes
    #: (targets :func:`~repro.workloads.synthetic.retail_universe`, which
    #: has the ``ord`` table).  0 keeps the classic selection-only pool —
    #: and the exact streams earlier specs produced.
    join_fraction: float = 0.0
    #: Zipf-like skew over hot-pool draws: rank ``r`` is weighted
    #: ``1/(r+1)^s``.  0 keeps the classic uniform draw (same RNG calls,
    #: so earlier specs stay byte-identical).
    zipf_skew: float = 0.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("need at least one client")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be within [0, 1]")
        if not 0.0 <= self.join_fraction <= 1.0:
            raise ValueError("join_fraction must be within [0, 1]")
        if self.zipf_skew < 0.0:
            raise ValueError("zipf_skew must be non-negative")


def _query_pool(rng: random.Random, size: int, domain: int, tag: int) -> list[tuple]:
    # (cat, threshold) shapes; the tag offsets indices so shared and
    # private pool queries never share a *name* (names are cosmetic —
    # cache keys are structural — but distinct names keep traces legible).
    return [
        (f"q{tag + i}", f"cat{rng.randrange(10)}", rng.randrange(domain))
        for i in range(size)
    ]


def _zipf_pick(rng: random.Random, items: list, skew: float):
    """Rank-weighted draw: item at rank ``r`` has weight ``1/(r+1)^skew``.

    ``skew == 0`` falls back to ``rng.choice`` — the exact call pattern
    (and therefore RNG state evolution) of the unskewed generator.
    """
    if skew <= 0.0:
        return rng.choice(items)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(items))]
    point = rng.random() * sum(weights)
    for item, weight in zip(items, weights):
        point -= weight
        if point <= 0:
            return item
    return items[-1]


def client_streams(spec: MultiSessionSpec) -> dict[str, list[ConjunctiveQuery]]:
    """Per-client query streams, keyed by client name (``c00``, ``c01``, …).

    Shared-pool draws reuse one parsed query object per shape, so two
    clients drawing the same hot shape issue *structurally identical*
    queries — exactly what exact-match and subsumption reuse feed on.
    With ``join_fraction`` the leading hot shapes become ``item ⋈ ord``
    joins: their selection constants differ shape to shape, but the
    ``ord`` operand they need is one and the same — re-shipped per shape
    by whole-view caching, shipped once under operator-level caching.
    """
    pool_rng = random.Random(spec.seed)
    hot_shapes = _query_pool(pool_rng, spec.hot_pool_size, spec.domain, tag=0)
    join_count = int(spec.hot_pool_size * spec.join_fraction)
    sel_count = spec.hot_pool_size - join_count
    hot_texts = []
    for index, (name, cat, threshold) in enumerate(hot_shapes):
        if index >= sel_count:
            # Drill-down ladder: join shapes cycle over the selection
            # shapes at the hot Zipf head, each round one notch tighter —
            # the browse-then-drill access pattern.  By the time a drill
            # arrives its item selection is usually cached, so the planner
            # goes hybrid (cached items + semijoin-reduced order fetch);
            # and because a drill projects (I, Q) but filters on V, its
            # *whole view* can never answer the next-tighter drill — only
            # an operator-level intermediate that kept V can.
            if sel_count > 0:
                ordinal, partner = divmod(index - sel_count, sel_count)
                _, cat, threshold = hot_shapes[partner]
                for _ in range(ordinal + 1):
                    threshold = threshold + (spec.domain - threshold) // 3
            hot_texts.append(
                f"{name}(I, Q) :- item(I, {cat}, V), ord(I, Q), V >= {threshold}"
            )
        else:
            hot_texts.append(f"{name}(I, V) :- item(I, {cat}, V), V >= {threshold}")
    hot_queries = [parse_query(text) for text in hot_texts]

    streams: dict[str, list[ConjunctiveQuery]] = {}
    for client_index in range(spec.clients):
        name = f"c{client_index:02d}"
        client_rng = random.Random(spec.seed * 10_007 + client_index)
        private_shapes = _query_pool(
            client_rng,
            spec.private_pool_size,
            spec.domain,
            tag=1000 * (client_index + 1),
        )
        stream: list[ConjunctiveQuery] = []
        for _ in range(spec.requests_per_client):
            if client_rng.random() < spec.shared_fraction:
                stream.append(_zipf_pick(client_rng, hot_queries, spec.zipf_skew))
            else:
                shape_name, cat, threshold = client_rng.choice(private_shapes)
                stream.append(
                    parse_query(
                        f"{shape_name}(I, V) :- item(I, {cat}, V), V >= {threshold}"
                    )
                )
        streams[name] = stream
    return streams


def submit_interleaved(server, streams: dict[str, list[ConjunctiveQuery]]) -> int:
    """Submit all streams round-robin (client 0's first, client 1's first, …).

    Interleaved submission order mirrors concurrent arrival; returns the
    number of submitted requests.  Sessions must already be open under
    the stream's client names.
    """
    submitted = 0
    depth = max((len(s) for s in streams.values()), default=0)
    for position in range(depth):
        for client, stream in streams.items():
            if position < len(stream):
                server.submit(client, stream[position])
                submitted += 1
    return submitted
