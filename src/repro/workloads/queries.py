"""CAQL query-stream generators for the benchmark harness.

Benchmarks drive the *CMS layer* directly (bypassing the IE) with
controlled query streams: repetition rate governs exact-match reuse,
overlap governs subsumption opportunity, constant variety governs
generalization benefit.  All generators are seeded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.caql.ast import ConjunctiveQuery
from repro.caql.parser import parse_query


@dataclass(frozen=True)
class StreamSpec:
    """Parameters of a generated CAQL query stream."""

    length: int
    repetition_rate: float = 0.0
    seed: int = 1


def repeated_selection_stream(
    template: str,
    constants: list[object],
    spec: StreamSpec,
) -> list[ConjunctiveQuery]:
    """Instantiate ``template`` (with a ``$C`` placeholder) over constants.

    With probability ``repetition_rate`` the next query repeats a
    previously issued one (exact-match reuse opportunity); otherwise a
    fresh constant is drawn.
    """
    if "$C" not in template:
        raise ValueError("template needs a $C placeholder")
    rng = random.Random(spec.seed)
    issued: list[ConjunctiveQuery] = []
    out: list[ConjunctiveQuery] = []
    for _ in range(spec.length):
        if issued and rng.random() < spec.repetition_rate:
            out.append(rng.choice(issued))
            continue
        constant = rng.choice(constants)
        query = parse_query(template.replace("$C", _render(constant)))
        issued.append(query)
        out.append(query)
    return out


def range_query_stream(
    relation: str,
    attribute_position: int,
    arity: int,
    domain: int,
    spec: StreamSpec,
    width_fraction: float = 0.2,
) -> list[ConjunctiveQuery]:
    """Overlapping range queries ``q(...) :- rel(...), Vi >= lo, Vi < hi``.

    Random windows of ``width_fraction * domain`` over a shared domain:
    later windows frequently fall inside earlier ones, which exact-match
    caching cannot exploit but subsumption can.
    """
    rng = random.Random(spec.seed)
    width = max(1, int(domain * width_fraction))
    variables = [f"V{i}" for i in range(arity)]
    head_vars = ", ".join(variables)
    out = []
    for index in range(spec.length):
        low = rng.randrange(0, max(1, domain - width))
        high = low + width
        if index and rng.random() < spec.repetition_rate:
            # Narrow a previous window: strictly contained, so subsumable.
            shrink = max(1, width // 4)
            low += shrink
            high -= shrink
            if high <= low:
                high = low + 1
        body = (
            f"{relation}({', '.join(variables)}), "
            f"{variables[attribute_position]} >= {low}, "
            f"{variables[attribute_position]} < {high}"
        )
        out.append(parse_query(f"q{index}({head_vars}) :- {body}"))
    return out


def _render(value: object) -> str:
    if isinstance(value, str):
        return value
    return repr(value)
