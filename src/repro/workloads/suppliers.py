"""The parts/suppliers workload.

The classic relational benchmark schema (suppliers, parts, shipments),
with rules an expert system might layer on top: sourcing advice, preferred
suppliers, substitute parts.  Exercises selective joins, range conditions,
aggregation, and functional-dependency SOAs (keys).
"""

from __future__ import annotations

import random

from repro.logic.soa import FunctionalDependency
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.workload import Workload

RULES = """
supplies_part(S, P) :- shipment(S, P, Q, C), Q > 0.
can_source(S, P, C) :- shipment(S, P, Q, C), Q > 0.
local_supplier(S, City) :- supplier(S, N, City, R).
colocated(S1, S2) :- supplier(S1, N1, City, R1), supplier(S2, N2, City, R2), S1 \\= S2.
heavy_part(P) :- part(P, N, Col, W), W > 40.
light_part(P) :- part(P, N, Col, W), W =< 40.
red_part(P) :- part(P, N, red, W).
good_supplier(S) :- supplier(S, N, City, R), R >= 8.
preferred_source(S, P) :- good_supplier(S), supplies_part(S, P).
bulk_source(S, P) :- shipment(S, P, Q, C), Q >= 500.
cheap_source(S, P) :- shipment(S, P, Q, C), C < 10.
sources_red(S) :- supplies_part(S, P), red_part(P).
substitutable(P1, P2) :- part(P1, N1, Col, W1), part(P2, N2, Col, W2), P1 \\= P2.
"""

DATABASE = (("supplier", 4), ("part", 4), ("shipment", 4))

EXAMPLE_QUERIES = {
    "heavy_parts": "heavy_part(P)",
    "preferred": "preferred_source(S, P)",
    "red_sources": "sources_red(S)",
    "bulk": "bulk_source(S, P)",
    "colocated": "colocated(s1, W)",
}

COLORS = ("red", "green", "blue", "black")
CITIES = ("athens", "paris", "london", "oslo", "rome")


def suppliers(
    n_suppliers: int = 25,
    n_parts: int = 40,
    n_shipments: int = 200,
    seed: int = 11,
) -> Workload:
    """Build a parts/suppliers workload with seeded random contents."""
    rng = random.Random(seed)

    supplier_rows = [
        (f"s{i}", f"supplier_{i}", rng.choice(CITIES), rng.randint(1, 10))
        for i in range(n_suppliers)
    ]
    part_rows = [
        (f"part{i}", f"part_{i}", rng.choice(COLORS), rng.randint(1, 80))
        for i in range(n_parts)
    ]
    shipment_rows = set()
    while len(shipment_rows) < n_shipments:
        shipment_rows.add(
            (
                f"s{rng.randrange(n_suppliers)}",
                f"part{rng.randrange(n_parts)}",
                rng.choice([0, 10, 50, 100, 500, 1000]),
                rng.randint(1, 50),
            )
        )

    tables = [
        Relation(
            Schema("supplier", ("s_id", "s_name", "city", "rating"), key=("s_id",)),
            supplier_rows,
        ),
        Relation(
            Schema("part", ("p_id", "p_name", "color", "weight"), key=("p_id",)),
            part_rows,
        ),
        Relation(
            Schema("shipment", ("s_id", "p_id", "qty", "cost")),
            shipment_rows,
        ),
    ]
    soas = (
        FunctionalDependency("supplier", 4, (0,), (1, 2, 3)),
        FunctionalDependency("part", 4, (0,), (1, 2, 3)),
    )
    return Workload(
        name="suppliers",
        tables=tables,
        rules=RULES,
        database=DATABASE,
        soas=soas,
        example_queries=dict(EXAMPLE_QUERIES),
        description=(
            f"{n_suppliers} suppliers, {n_parts} parts, {n_shipments} shipments"
        ),
    )
