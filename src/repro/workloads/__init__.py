"""Workloads: genealogy, suppliers, synthetic generators, query streams."""

from repro.workloads.bom import bom
from repro.workloads.genealogy import genealogy
from repro.workloads.multisession import (
    MultiSessionSpec,
    client_streams,
    submit_interleaved,
)
from repro.workloads.queries import (
    StreamSpec,
    range_query_stream,
    repeated_selection_stream,
)
from repro.workloads.suppliers import suppliers
from repro.workloads.synthetic import chain, fanout_graph, selection_universe
from repro.workloads.workload import Workload

__all__ = [
    "MultiSessionSpec",
    "StreamSpec",
    "Workload",
    "bom",
    "chain",
    "client_streams",
    "fanout_graph",
    "genealogy",
    "range_query_stream",
    "repeated_selection_stream",
    "selection_universe",
    "submit_interleaved",
    "suppliers",
]
