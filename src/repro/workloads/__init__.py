"""Workloads: genealogy, suppliers, synthetic generators, query streams."""

from repro.workloads.bom import bom
from repro.workloads.genealogy import genealogy
from repro.workloads.queries import (
    StreamSpec,
    range_query_stream,
    repeated_selection_stream,
)
from repro.workloads.suppliers import suppliers
from repro.workloads.synthetic import chain, fanout_graph, selection_universe
from repro.workloads.workload import Workload

__all__ = [
    "StreamSpec",
    "Workload",
    "bom",
    "chain",
    "fanout_graph",
    "genealogy",
    "range_query_stream",
    "repeated_selection_stream",
    "selection_universe",
    "suppliers",
]
