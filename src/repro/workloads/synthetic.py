"""Parameterized synthetic workloads.

Experiments need workloads whose *shape* is a controlled variable:

* :func:`chain` — relations ``r0..r{k-1}`` with a chain rule joining them,
  for sweeping join width and the interpreted/compiled trade-off;
* :func:`selection_universe` — one wide relation plus a family of
  overlapping selection queries, for sweeping subsumption opportunity;
* :func:`fanout_graph` — an edge relation with controlled out-degree, for
  recursion-depth sweeps.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import random

from repro.logic.soa import RecursiveStructure
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.workload import Workload


def chain(
    length: int = 3,
    rows_per_relation: int = 100,
    domain: int = 50,
    seed: int = 3,
) -> Workload:
    """Relations r0..r{length-1} and ``chain(X0, Xk) :- r0(X0, X1), ...``."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    rng = random.Random(seed)
    tables = []
    for index in range(length):
        rows = {
            (rng.randrange(domain), rng.randrange(domain))
            for _ in range(rows_per_relation)
        }
        tables.append(Relation(Schema(f"r{index}", ("a", "b")), sorted(rows)))

    body = ", ".join(f"r{i}(X{i}, X{i + 1})" for i in range(length))
    rules = f"chain(X0, X{length}) :- {body}.\n"
    rules += "short_chain(X0, X1) :- r0(X0, X1).\n"
    database = tuple((f"r{i}", 2) for i in range(length))
    return Workload(
        name=f"chain{length}",
        tables=tables,
        rules=rules,
        database=database,
        example_queries={"chain_from_zero": "chain(0, W)", "whole_chain": "chain(X, Y)"},
        description=f"{length}-way chain join, {rows_per_relation} rows each",
    )


def selection_universe(
    rows: int = 500,
    domain: int = 1000,
    seed: int = 5,
) -> Workload:
    """One wide relation ``item(id, cat, val)`` for selection sweeps.

    ``cat`` is a 10-value category attribute, ``val`` ranges over
    ``[0, domain)`` — overlapping range queries over ``val`` and equality
    queries over ``cat`` give subsumption plenty of opportunity.
    """
    rng = random.Random(seed)
    item_rows = [
        (i, f"cat{rng.randrange(10)}", rng.randrange(domain)) for i in range(rows)
    ]
    tables = [Relation(Schema("item", ("item_id", "cat", "val")), item_rows)]
    rules = """
in_category(I, C) :- item(I, C, V).
valued_over(I, T) :- item(I, C, V), V >= T.
category_sample(I) :- item(I, cat0, V).
"""
    return Workload(
        name="selection-universe",
        tables=tables,
        rules=rules,
        database=(("item", 3),),
        example_queries={"category": "in_category(I, cat0)"},
        description=f"{rows} items over a {domain}-value domain",
    )


def retail_universe(
    rows: int = 300,
    orders: int = 600,
    domain: int = 1000,
    seed: int = 5,
) -> Workload:
    """``item(id, cat, val)`` plus ``ord(item_id, qty)`` for join sweeps.

    Selection queries over ``item`` overlap exactly as in
    :func:`selection_universe`; join queries against ``ord`` all need the
    same scan of ``ord`` shipped from the remote DBMS — the operand an
    operator-level intermediate cache pays for once, where whole-view
    caching re-ships it for every distinct query.
    """
    rng = random.Random(seed)
    item_rows = [
        (i, f"cat{rng.randrange(10)}", rng.randrange(domain)) for i in range(rows)
    ]
    ord_rows = sorted(
        {(rng.randrange(rows), 1 + rng.randrange(9)) for _ in range(orders)}
    )
    tables = [
        Relation(Schema("item", ("item_id", "cat", "val")), item_rows),
        Relation(Schema("ord", ("item_id", "qty")), ord_rows),
    ]
    rules = """
in_category(I, C) :- item(I, C, V).
valued_over(I, T) :- item(I, C, V), V >= T.
item_orders(I, V, Q) :- item(I, C, V), ord(I, Q).
"""
    return Workload(
        name="retail-universe",
        tables=tables,
        rules=rules,
        database=(("item", 3), ("ord", 2)),
        example_queries={"orders": "item_orders(I, V, Q)"},
        description=(
            f"{rows} items, {len(ord_rows)} orders over a "
            f"{domain}-value domain"
        ),
    )


def fanout_graph(
    nodes: int = 60,
    out_degree: int = 2,
    seed: int = 13,
) -> Workload:
    """A layered DAG ``edge(a, b)`` plus transitive reachability rules."""
    rng = random.Random(seed)
    edges = set()
    for node in range(nodes - 1):
        for _ in range(out_degree):
            target = rng.randrange(node + 1, min(nodes, node + 10))
            edges.add((f"n{node}", f"n{target}"))
    tables = [Relation(Schema("edge", ("src", "dst")), sorted(edges))]
    rules = """
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
neighbor(X, Y) :- edge(X, Y).
"""
    return Workload(
        name="fanout-graph",
        tables=tables,
        rules=rules,
        database=(("edge", 2),),
        soas=(RecursiveStructure("reach", "edge"),),
        example_queries={"reach_from_n0": "reach(n0, W)"},
        description=f"layered DAG, {nodes} nodes, out-degree {out_degree}",
    )
