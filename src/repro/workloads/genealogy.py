"""The genealogy workload.

Family databases were the canonical deductive-database testbed of the
paper's era: recursive rules (ancestor/descendant), joins through shared
individuals (siblings, cousins), and natural mutual-exclusion SOAs
(male/female).  The generator builds a random — but seeded, hence
reproducible — family forest with a configurable number of generations and
branching factor.
"""

from __future__ import annotations

import random

from repro.logic.soa import MutualExclusion, RecursiveStructure
from repro.logic.terms import Atom, Var
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.workload import Workload

RULES = """
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
father(X, Y) :- parent(X, Y), male(X).
mother(X, Y) :- parent(X, Y), female(X).
sibling(X, Y) :- parent(P, X), parent(P, Y), X \\= Y.
brother(X, Y) :- sibling(X, Y), male(X).
sister(X, Y) :- sibling(X, Y), female(X).
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
uncle(U, N) :- sibling(U, P), parent(P, N), male(U).
aunt(U, N) :- sibling(U, P), parent(P, N), female(U).
cousin(X, Y) :- parent(P, X), parent(Q, Y), sibling(P, Q).
adult(X) :- age(X, A), A >= 18.
minor(X) :- age(X, A), A < 18.
elder(X) :- age(X, A), A >= 65.
parent_of_minor(X) :- parent(X, Y), age(Y, A), A < 18.
same_generation(X, Y) :- parent(P, X), parent(Q, Y), sibling(P, Q).
same_generation(X, Y) :- sibling(X, Y).
"""

DATABASE = (("parent", 2), ("male", 1), ("female", 1), ("age", 2))

EXAMPLE_QUERIES = {
    "ancestors": "ancestor(p0, W)",
    "grandchildren": "grandparent(p0, W)",
    "uncles": "uncle(U, N)",
    "minors": "minor(X)",
    "siblings_of_p1": "sibling(p1, S)",
}


def genealogy(
    generations: int = 4,
    branching: int = 3,
    roots: int = 2,
    seed: int = 7,
) -> Workload:
    """Build a family forest workload.

    ``roots`` founding individuals each start a tree; every person in a
    non-final generation has up to ``branching`` children (randomly 1 to
    ``branching``).  Ages decrease with generation; sexes alternate
    randomly.  All randomness is seeded.
    """
    rng = random.Random(seed)
    people: list[str] = []
    parent_rows: list[tuple[str, str]] = []
    counter = 0

    def new_person() -> str:
        nonlocal counter
        name = f"p{counter}"
        counter += 1
        people.append(name)
        return name

    generation_members: list[list[str]] = [[new_person() for _ in range(roots)]]
    for _generation in range(1, generations):
        previous = generation_members[-1]
        current: list[str] = []
        for parent in previous:
            for _ in range(rng.randint(1, branching)):
                child = new_person()
                parent_rows.append((parent, child))
                current.append(child)
        generation_members.append(current)

    males, females = [], []
    for person in people:
        (males if rng.random() < 0.5 else females).append(person)

    ages = []
    for generation, members in enumerate(generation_members):
        base_age = 25 * (generations - generation)
        for person in members:
            ages.append((person, base_age + rng.randint(-5, 5)))

    tables = [
        Relation(Schema("parent", ("par", "child")), parent_rows),
        Relation(Schema("male", ("person",)), [(p,) for p in males]),
        Relation(Schema("female", ("person",)), [(p,) for p in females]),
        Relation(Schema("age", ("person", "years")), ages),
    ]
    x = Var("X")
    soas = (
        MutualExclusion((Atom("male", (x,)), Atom("female", (x,)))),
        RecursiveStructure("ancestor", "parent"),
    )
    return Workload(
        name="genealogy",
        tables=tables,
        rules=RULES,
        database=DATABASE,
        soas=soas,
        example_queries=dict(EXAMPLE_QUERIES),
        description=(
            f"family forest: {roots} roots × {generations} generations, "
            f"branching ≤ {branching}, {len(people)} people"
        ),
    )
