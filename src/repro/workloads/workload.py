"""The workload container: database tables + knowledge base + queries.

A workload bundles everything a BrAID experiment needs: the base tables to
load into the remote DBMS, the rules and SOAs for the IE's knowledge base,
and named example AI queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.kb import KnowledgeBase
from repro.logic.soa import (
    FunctionalDependency,
    MutualExclusion,
    RecursiveStructure,
)
from repro.relational.relation import Relation

SOA = MutualExclusion | FunctionalDependency | RecursiveStructure


@dataclass
class Workload:
    """A complete experimental setup."""

    name: str
    tables: list[Relation]
    rules: str
    database: tuple[tuple[str, int], ...]
    soas: tuple[SOA, ...] = ()
    #: Named example AI queries (textual atoms).
    example_queries: dict[str, str] = field(default_factory=dict)
    description: str = ""

    def build_kb(self) -> KnowledgeBase:
        """A fresh knowledge base with this workload's rules and SOAs."""
        kb = KnowledgeBase()
        for pred, arity in self.database:
            kb.declare_database(pred, arity)
        kb.add_rules(self.rules)
        for soa in self.soas:
            kb.add_soa(soa)
        return kb

    def table(self, name: str) -> Relation:
        """The base table named ``name``; raises KeyError when absent."""
        for relation in self.tables:
            if relation.schema.name == name:
                return relation
        raise KeyError(name)

    def total_rows(self) -> int:
        """Total rows across all base tables."""
        return sum(len(t) for t in self.tables)
