"""The bill-of-materials (part explosion) workload.

Alongside genealogy, part explosion was *the* recursive benchmark of the
deductive-database era: assemblies contain subassemblies contain basic
parts, and questions like "every part inside assembly X" or "total cost of
X" require recursion that a 1990 SQL DBMS could not express — exactly the
knowledge-processing-over-stored-data split BrAID targets.
"""

from __future__ import annotations

import random

from repro.logic.soa import FunctionalDependency, RecursiveStructure
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.workload import Workload

RULES = """
contains(A, P) :- assembly(A, P, N).
contains_deep(A, P) :- contains(A, P).
contains_deep(A, P) :- contains(A, S), contains_deep(S, P).
uses_basic(A, P) :- contains_deep(A, P), basic_part(P, C, W).
expensive_component(A, P) :- contains_deep(A, P), basic_part(P, C, W), C > 50.
heavy_component(A, P) :- contains_deep(A, P), basic_part(P, C, W), W > 20.
direct_cost(A, C) :- contains(A, P), basic_part(P, C, W).
shares_part(A1, A2) :- contains_deep(A1, P), contains_deep(A2, P), A1 \\= A2.
top_assembly(A) :- assembly(A, P, N), \\+ assembly(Q, A, M).
"""

DATABASE = (("assembly", 3), ("basic_part", 3))

EXAMPLE_QUERIES = {
    "explode_root": "contains_deep(asm0, P)",
    "expensive": "expensive_component(asm0, P)",
    "basic_parts": "uses_basic(asm0, P)",
    "shared": "shares_part(asm0, A)",
}


def bom(
    depth: int = 4,
    fanout: int = 3,
    basic_parts: int = 30,
    seed: int = 19,
) -> Workload:
    """Build a part-explosion workload.

    A tree of assemblies ``depth`` levels deep with up to ``fanout``
    children each; leaves reference basic parts with random cost/weight.
    Seeded and deterministic.
    """
    rng = random.Random(seed)
    assembly_rows: list[tuple[str, str, int]] = []
    part_rows = [
        (f"part{i}", rng.randint(1, 100), rng.randint(1, 40))
        for i in range(basic_parts)
    ]

    counter = 0

    def build(level: int) -> str:
        nonlocal counter
        name = f"asm{counter}"
        counter += 1
        children = rng.randint(1, fanout)
        for _ in range(children):
            if level + 1 >= depth:
                part = f"part{rng.randrange(basic_parts)}"
                assembly_rows.append((name, part, rng.randint(1, 4)))
            else:
                child = build(level + 1)
                assembly_rows.append((name, child, rng.randint(1, 2)))
        return name

    build(0)

    tables = [
        Relation(Schema("assembly", ("asm", "component", "qty")), assembly_rows),
        Relation(
            Schema("basic_part", ("p_id", "cost", "weight"), key=("p_id",)),
            part_rows,
        ),
    ]
    soas = (
        RecursiveStructure("contains_deep", "contains"),
        FunctionalDependency("basic_part", 3, (0,), (1, 2)),
    )
    return Workload(
        name="bill-of-materials",
        tables=tables,
        rules=RULES,
        database=DATABASE,
        soas=soas,
        example_queries=dict(EXAMPLE_QUERIES),
        description=(
            f"part explosion: depth {depth}, fanout ≤ {fanout}, "
            f"{counter} assemblies over {basic_parts} basic parts"
        ),
    )
