"""The federated RDI: one interface, many autonomous backends.

The CMS speaks to a single Remote DBMS Interface; this class keeps that
contract while the far side is a *federation* — several independent
servers, each with its own catalog, cost profile, fault policy, retry
budget, and circuit breaker.  A query whose base relations all live on one
backend is routed straight through (``rdi.route``).  A query spanning
backends is **scatter-gathered**:

1. partition the occurrences by home backend (the planner's sub-query
   construction, reused here: per-backend conditions are pushed down,
   projections narrowed to needed columns),
2. fetch the cheapest part first (per-backend statistics drive the order),
3. ship the distinct join-column values of already-fetched parts to later
   backends as IN-lists — the PR 4 semijoin reduction, applied *between*
   backends, with :func:`~repro.core.rdi.canonical_bindings` keeping the
   wire deterministic,
4. short-circuit the remaining round trips when any part (or binding set)
   comes back empty — a conjunctive join with an empty input is empty,
5. join the parts locally (the executor's combine idiom) and project.

Each per-backend link is a full :class:`~repro.core.rdi.RemoteInterface`,
so retries, timeouts, and circuit breaking happen per backend; one dark
backend never blocks the others.  :meth:`fetch_partial` is the degraded
path: answer from the surviving backends with the dark backends' columns
nulled out, for the CMS to tag ``degraded`` (the PR 1 contract, per
source).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import RemoteDBMSError, UnknownRelationError
from repro.common.metrics import CACHE_TUPLES_PROCESSED, Metrics
from repro.relational.operators import join, select
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.statistics import RelationStatistics
from repro.caql.eval import result_schema
from repro.caql.psj import ConstProj, PSJQuery, parse_column
from repro.core.rdi import RemoteInterface, canonical_bindings
from repro.remote.faults import RetryPolicy
from repro.federation.catalog import FederatedCatalog


@dataclass(frozen=True)
class FederatedPart:
    """One backend's share of a scattered query."""

    #: Home backend name.
    backend: str
    #: The part as a self-contained PSJ query (pushed-down conditions,
    #: projection narrowed to the needed columns).
    sub: PSJQuery
    #: Occurrence tags of the original query this part covers.
    tags: frozenset[str]
    #: Qualified query columns the part exposes (== ``sub.projection``).
    columns: tuple[str, ...]
    #: Touched-cardinality estimate, used to order the scatter.
    estimate: float


def _needed_columns(query: PSJQuery, tags: frozenset[str]) -> list[str]:
    """Columns a part must expose: projection columns inside ``tags`` plus
    the covered side of conditions crossing the part boundary (the planner's
    rule, reused so parts compose exactly like cache/remote plan parts)."""
    prefixes = tuple(tag + "." for tag in tags)
    needed: list[str] = []

    def want(col: str) -> None:
        if col.startswith(prefixes) and col not in needed:
            needed.append(col)

    for entry in query.projection:
        if not isinstance(entry, ConstProj):
            want(entry)
    for condition in query.conditions:
        cols = condition.columns()
        inside = {c for c in cols if c.startswith(prefixes)}
        if inside and inside != cols:
            for col in inside:
                want(col)
    return needed


def _sub_query(query: PSJQuery, tags: frozenset[str], label: str) -> PSJQuery:
    """One backend's share of ``query`` as a self-contained PSJ query."""
    prefixes = tuple(tag + "." for tag in tags)
    occurrences = tuple(o for o in query.occurrences if o.tag in tags)
    conditions = tuple(
        c
        for c in query.conditions
        if c.columns() and all(col.startswith(prefixes) for col in c.columns())
    )
    projection = tuple(_needed_columns(query, tags))
    return PSJQuery(f"{query.name}__{label}", occurrences, conditions, projection)


class FederatedInterface:
    """Scatter-gather implementation of the single-RDI contract."""

    def __init__(
        self,
        catalog: FederatedCatalog,
        buffer_size: int = 64,
        retries: dict[str, RetryPolicy] | None = None,
        default_retry: RetryPolicy | None = None,
        metrics: Metrics | None = None,
        tracer=None,
        local_profile: CostProfile | None = None,
        semijoin: bool = True,
        slo=None,
    ):
        backends = catalog.backends()
        if not backends:
            raise ValueError("a federation needs at least one backend")
        self.catalog = catalog
        first = catalog.backend(backends[0])
        self.clock: SimClock = first.clock
        for name in backends[1:]:
            if catalog.backend(name).clock is not self.clock:
                raise ValueError("federated backends must share one SimClock")
        self.tracer = tracer if tracer is not None else first.tracer
        #: The aggregate ledger ("remote.*" totals across backends); each
        #: backend server records into its own child scope of this.
        self.metrics: Metrics = metrics if metrics is not None else first.metrics
        #: Workstation-side profile: rates the local gather/join work.
        self.local_profile = (
            local_profile if local_profile is not None else CostProfile()
        )
        #: With semijoin off, the scatter ships every part unreduced and
        #: never short-circuits — the "naive per-backend loose coupling"
        #: baseline E19 compares against.
        self.semijoin = semijoin
        #: Optional per-backend latency SLO monitor
        #: (:class:`~repro.obs.slo.SLOMonitor`); observed latencies are
        #: simulated-clock deltas around each backend round trip, so a
        #: fetch issued inside a frozen ``parallel()`` region observes 0.
        self.slo = slo
        #: Optional gather-part sink, ``callable(sub_psj, relation,
        #: derivation_seconds)``: the CMS installs one so each *unreduced*
        #: per-backend part of a scatter becomes an operator-level cache
        #: intermediate (semijoin-reduced parts are skipped — their rows
        #: depend on the binding set, not on ``sub_psj`` alone).
        self.intermediate_sink = None
        retries = retries or {}
        #: One resilient link per backend: its own retry budget, its own
        #: breaker (tagged with the backend name in traces).
        self.links: dict[str, RemoteInterface] = {
            name: RemoteInterface(
                catalog.backend(name),
                buffer_size,
                retries.get(name, default_retry),
            )
            for name in backends
        }

    # -- contract: availability / metadata -------------------------------------
    def link_for(self, table: str) -> RemoteInterface:
        """The resilient link to the backend owning ``table``."""
        return self.links[self.catalog.home_of(table)]

    def breaker_of(self, backend: str):
        """The named backend's circuit breaker (observability/tests)."""
        return self.links[backend].breaker

    def remote_available(self) -> bool:
        """Planner hook: at least one backend would accept a request."""
        return any(
            self.links[name].remote_available() for name in self.catalog.backends()
        )

    def schema_of(self, table: str) -> Schema:
        return self.link_for(table).schema_of(table)

    def statistics_of(self, table: str) -> RelationStatistics:
        return self.link_for(table).statistics_of(table)

    def has_table(self, table: str) -> bool:
        return self.catalog.has(table)

    def cost_profile_of(self, table: str) -> tuple[str, CostProfile]:
        """Planner hook: home backend name and cost profile of ``table``."""
        name = self.catalog.home_of(table)
        return name, self.catalog.backend(name).profile

    def estimate_cost(self, tuples_touched: float, tuples_shipped: float) -> float:
        """Conservative planner estimate: the most expensive backend."""
        return max(
            self.links[name].estimate_cost(tuples_touched, tuples_shipped)
            for name in self.catalog.backends()
        )

    # -- partitioning -----------------------------------------------------------
    def partition(self, psj: PSJQuery) -> list[FederatedPart]:
        """Split ``psj`` by home backend (deterministic name order)."""
        if not psj.occurrences:
            raise UnknownRelationError(
                f"{psj.name}: cannot route a query with no base relations"
            )
        groups: dict[str, list[str]] = {}
        for occ in psj.occurrences:
            groups.setdefault(self.catalog.home_of(occ.pred), []).append(occ.tag)
        parts: list[FederatedPart] = []
        for backend in sorted(groups):
            tags = frozenset(groups[backend])
            sub = _sub_query(psj, tags, backend)
            estimate = float(
                sum(self.statistics_of(o.pred).cardinality for o in sub.occurrences)
            )
            parts.append(
                FederatedPart(backend, sub, tags, tuple(sub.projection), estimate)
            )
        return parts

    def _observe_backend(self, backend: str, started: float) -> None:
        """Feed one backend round trip's simulated latency to the SLO
        monitor (a no-op without one; never advances the clock)."""
        if self.slo is not None:
            self.slo.observe(backend, self.clock.now - started)

    # -- contract: execution ----------------------------------------------------
    def fetch(
        self,
        psj: PSJQuery,
        bindings: dict[str, tuple[object, ...]] | None = None,
    ) -> Relation:
        """Fetch ``psj``: direct routing when one backend owns every base
        relation, scatter-gather otherwise."""
        parts = self.partition(psj)
        if len(parts) == 1:
            part = parts[0]
            self.tracer.event(
                "rdi.route",
                view=psj.name,
                backend=part.backend,
                tables=sorted({o.pred for o in psj.occurrences}),
            )
            started = self.clock.now
            relation = self.links[part.backend].fetch(psj, bindings=bindings)
            self._observe_backend(part.backend, started)
            return relation
        return self._scatter_gather(psj, parts, bindings)

    def fetch_many(self, psjs: list[PSJQuery]) -> list[Relation]:
        """Batched fetch: single-backend queries share their backend's one
        round trip (``fetch_many`` per link); spanning queries scatter."""
        if not psjs:
            return []
        if len(psjs) == 1:
            return [self.fetch(psjs[0])]
        grouped: dict[str, list[int]] = {}
        spanning: list[int] = []
        partitions = [self.partition(psj) for psj in psjs]
        for index, parts in enumerate(partitions):
            if len(parts) == 1:
                grouped.setdefault(parts[0].backend, []).append(index)
            else:
                spanning.append(index)
        results: dict[int, Relation] = {}
        for backend in sorted(grouped):
            indexes = grouped[backend]
            for index in indexes:
                self.tracer.event(
                    "rdi.route",
                    view=psjs[index].name,
                    backend=backend,
                    tables=sorted({o.pred for o in psjs[index].occurrences}),
                )
            started = self.clock.now
            batch = self.links[backend].fetch_many([psjs[i] for i in indexes])
            self._observe_backend(backend, started)
            for index, relation in zip(indexes, batch):
                results[index] = relation
        for index in spanning:
            results[index] = self._scatter_gather(psjs[index], partitions[index], None)
        return [results[index] for index in range(len(psjs))]

    def fetch_base_relation(self, table: str) -> Relation:
        """Fetch one whole base table from its home backend."""
        if not self.catalog.has(table):
            raise UnknownRelationError(table)
        backend = self.catalog.home_of(table)
        self.tracer.event(
            "rdi.route", view=table, backend=backend, tables=[table]
        )
        started = self.clock.now
        relation = self.links[backend].fetch_base_relation(table)
        self._observe_backend(backend, started)
        return relation

    # -- scatter-gather ---------------------------------------------------------
    def _scatter_gather(
        self,
        psj: PSJQuery,
        parts: list[FederatedPart],
        bindings: dict[str, tuple[object, ...]] | None,
    ) -> Relation:
        supplied = canonical_bindings(bindings)
        ordered = (
            sorted(parts, key=lambda p: (p.estimate, p.backend))
            if self.semijoin
            else parts
        )
        self.tracer.event(
            "federation.scatter",
            view=psj.name,
            backends=[p.backend for p in ordered],
            parts=len(ordered),
        )
        fetched: list[tuple[FederatedPart, Relation]] = []
        empty = False
        for part in ordered:
            self.tracer.event(
                "rdi.route",
                view=part.sub.name,
                backend=part.backend,
                tables=sorted({o.pred for o in part.sub.occurrences}),
            )
            if empty:
                # Conjunctive join already known empty: no round trip.
                fetched.append((part, self._empty_part(part)))
                continue
            part_bindings = self._part_bindings(psj, part, supplied, fetched)
            if part_bindings is None:
                # An empty binding set proves the join empty — skip the
                # round trip entirely (zero requests, zero tuples).
                self.tracer.event(
                    "federation.short_circuit",
                    view=part.sub.name,
                    backend=part.backend,
                )
                empty = True
                fetched.append((part, self._empty_part(part)))
                continue
            started = self.clock.now
            relation = self.links[part.backend].fetch(
                part.sub, bindings=part_bindings or None
            )
            self._observe_backend(part.backend, started)
            if self.intermediate_sink is not None and not part_bindings:
                self.intermediate_sink(
                    part.sub, relation, self.clock.now - started
                )
            labeled = self._labeled(part, relation)
            if self.semijoin and not len(labeled):
                empty = True
            fetched.append((part, labeled))
        result = self._gather(psj, fetched)
        self.tracer.event(
            "federation.gather",
            view=psj.name,
            parts=len(fetched),
            tuples=len(result),
        )
        return result

    def _part_bindings(
        self,
        psj: PSJQuery,
        part: FederatedPart,
        supplied: dict[str, tuple[object, ...]],
        fetched: list[tuple[FederatedPart, Relation]],
    ) -> dict[str, tuple[object, ...]] | None:
        """Binding sets to ship with ``part``: the caller's bindings that
        land in this part, plus — semijoin mode — the distinct values of
        cross-backend equality joins against already-fetched parts.
        Returns None when any set is empty (the join is provably empty)."""
        out: dict[str, tuple[object, ...]] = {}
        for column, values in supplied.items():
            tag, _position = parse_column(column)
            if tag in part.tags:
                out[column] = values
        if self.semijoin:
            for condition in psj.conditions:
                if condition.op != "=" or not condition.is_col_col():
                    continue
                left, right = condition.left.name, condition.right.name
                left_in = parse_column(left)[0] in part.tags
                right_in = parse_column(right)[0] in part.tags
                if left_in == right_in:
                    continue
                inside, outside = (left, right) if left_in else (right, left)
                values = self._column_values(outside, fetched)
                if values is None:
                    continue
                if inside in out:
                    existing = set(out[inside])
                    values = tuple(v for v in values if v in existing)
                out[inside] = values
        for values in out.values():
            if not values:
                return None
        return out

    def _column_values(
        self, column: str, fetched: list[tuple[FederatedPart, Relation]]
    ) -> tuple[object, ...] | None:
        """Distinct values of a qualified column across fetched parts."""
        for _part, relation in fetched:
            if column not in relation.schema.attributes:
                continue
            position = relation.schema.position(column)
            seen: set[object] = set()
            values: list[object] = []
            for row in relation:
                value = row[position]
                if value not in seen:
                    seen.add(value)
                    values.append(value)
            self._charge_local(len(relation))  # the extraction re-read
            return tuple(values)
        return None

    def _labeled(self, part: FederatedPart, relation: Relation) -> Relation:
        """Expose a part's positional result under qualified column names."""
        if not part.columns:
            schema = Schema(part.backend, (f"_exists_{part.backend}",))
            return Relation(schema, [(True,)] if len(relation) else [])
        return Relation(Schema(part.backend, part.columns), iter(relation))

    def _empty_part(self, part: FederatedPart) -> Relation:
        if not part.columns:
            return Relation(Schema(part.backend, (f"_exists_{part.backend}",)), [])
        return Relation(Schema(part.backend, part.columns), [])

    def _gather(
        self,
        psj: PSJQuery,
        fetched: list[tuple[FederatedPart, Relation]],
        partial: bool = False,
    ) -> Relation:
        """Join the gathered parts locally and project to the query shape
        (the executor's combine idiom: equality pairs drive hash joins,
        other cross conditions ride as residuals).

        With ``partial`` (some backends were dark), conditions touching
        columns that never arrived are dropped and those projection
        columns come back ``None`` — the caller tags the stream
        ``degraded``."""
        pushed: list = []
        for part, _relation in fetched:
            pushed.extend(part.sub.conditions)
        pending = [c for c in psj.conditions if c not in pushed]
        exists_ok = all(
            len(relation) for part, relation in fetched if not part.columns
        )
        value_parts = [relation for part, relation in fetched if part.columns]
        schema = result_schema(psj.name, psj.arity)

        if not value_parts:
            # Every part was an existence check; projection is constants.
            if not exists_ok:
                return Relation(schema, [])
            if psj.projection:
                row = tuple(
                    entry.value if isinstance(entry, ConstProj) else None
                    for entry in psj.projection
                )
            else:
                row = (True,)
            return Relation(schema, [row])

        combined = value_parts[0]
        seen_cols = set(combined.schema.attributes)
        input_rows = len(combined)
        for relation in value_parts[1:]:
            right_cols = set(relation.schema.attributes)
            pairs, residual, remaining = [], [], []
            for condition in pending:
                cols = condition.columns()
                if cols <= (seen_cols | right_cols):
                    left_side = cols & seen_cols
                    right_side = cols & right_cols
                    if (
                        condition.op == "="
                        and condition.is_col_col()
                        and len(left_side) == 1
                        and len(right_side) == 1
                    ):
                        pairs.append((left_side.pop(), right_side.pop()))
                    else:
                        residual.append(condition)
                else:
                    remaining.append(condition)
            combined = join(
                combined, relation, pairs, name="gather", conditions=residual
            )
            seen_cols |= right_cols
            input_rows += len(relation) + len(combined)
            pending = remaining
        if pending:
            # In a full gather every pending condition is applicable (its
            # columns are needed columns of some part); in a partial one,
            # conditions touching a dark backend's columns are dropped.
            applicable = [c for c in pending if c.columns() <= seen_cols]
            if applicable:
                combined = select(combined, applicable)

        entries: list[tuple[str, object]] = []
        for entry in psj.projection:
            if isinstance(entry, ConstProj):
                entries.append(("const", entry.value))
            elif not partial or entry in combined.schema.attributes:
                entries.append(("col", combined.schema.position(entry)))
            else:
                entries.append(("const", None))  # a dark backend owned it
        if entries:
            rows = (
                tuple(v if kind == "const" else row[v] for kind, v in entries)
                for row in combined
            )
            result = (
                Relation(schema, rows) if exists_ok else Relation(schema, [])
            )
        else:
            result = Relation(
                schema, [(True,)] if (len(combined) and exists_ok) else []
            )
        self._charge_local(input_rows + len(result))
        return result

    # -- degraded answers -------------------------------------------------------
    def fetch_partial(self, psj: PSJQuery) -> Relation | None:
        """Best-effort answer from the surviving backends.

        Scatters independently (no cross-backend bindings: a surviving
        part must not be narrowed by a part that may yet fail), tolerating
        per-backend failures.  Surviving parts are joined on the
        conditions they can check; columns owned by dark backends come
        back ``None``.  Returns None when *no* part survived — the caller
        then falls back to its archive/raise path.
        """
        try:
            parts = self.partition(psj)
        except RemoteDBMSError:
            return None
        survivors: list[tuple[FederatedPart, Relation]] = []
        lost: list[str] = []
        for part in parts:
            started = self.clock.now
            try:
                relation = self.links[part.backend].fetch(part.sub)
                self._observe_backend(part.backend, started)
            except RemoteDBMSError:
                lost.append(part.backend)
                self.tracer.event(
                    "federation.part_lost",
                    view=part.sub.name,
                    backend=part.backend,
                )
                continue
            survivors.append((part, self._labeled(part, relation)))
        if not survivors:
            return None
        return self._gather(psj, survivors, partial=bool(lost))

    def _charge_local(self, tuples: int) -> None:
        """Workstation-side gather work (joins, extraction re-reads)."""
        if tuples:
            self.metrics.incr(CACHE_TUPLES_PROCESSED, tuples)
            self.clock.charge("local", self.local_profile.cache_per_tuple * tuples)
