"""The federated catalog: which backend is home to which base relation.

BrAID's architecture assumes a single "independent and autonomous" remote
DBMS behind the RDI; the bridging thesis generalizes to N heterogeneous
sources.  The catalog is the federation's only piece of global knowledge:
a mapping from base-relation name to the backend that owns it.  Everything
else — schemas, statistics, cost profiles, fault behaviour — stays with
the individual backend, which remains exactly as independent as the
paper's single server.

Ownership is exclusive: a relation lives on one backend (no replication),
so routing a fetch is a dictionary lookup and cross-backend joins are
always genuine scatter-gathers.
"""

from __future__ import annotations

from repro.common.errors import UnknownRelationError
from repro.remote.server import RemoteDBMS


class FederatedCatalog:
    """Maps every base relation to its home backend."""

    def __init__(self) -> None:
        self._backends: dict[str, RemoteDBMS] = {}
        self._home: dict[str, str] = {}

    def register(self, name: str, server: RemoteDBMS) -> None:
        """Add a backend, claiming every table its catalog knows.

        Raises ``ValueError`` on a duplicate backend name or when a table
        is already owned by an earlier backend — exclusive ownership is
        what makes routing unambiguous.
        """
        if not name:
            raise ValueError("backend name must be non-empty")
        if name in self._backends:
            raise ValueError(f"backend {name!r} already registered")
        for table in server.catalog.tables():
            owner = self._home.get(table)
            if owner is not None:
                raise ValueError(
                    f"table {table!r} already owned by backend {owner!r}"
                )
        self._backends[name] = server
        for table in server.catalog.tables():
            self._home[table] = name

    def rescan(self) -> None:
        """Re-discover table ownership after backend-side DDL.

        Tables loaded into a backend *after* :meth:`register` become
        routable; a table claimed by two backends raises ``ValueError``.
        """
        home: dict[str, str] = {}
        for name in sorted(self._backends):
            for table in self._backends[name].catalog.tables():
                owner = home.get(table)
                if owner is not None:
                    raise ValueError(
                        f"table {table!r} owned by both {owner!r} and {name!r}"
                    )
                home[table] = name
        self._home = home

    # -- lookups ---------------------------------------------------------------
    def home_of(self, table: str) -> str:
        """Name of the backend owning ``table``; raises when unowned."""
        try:
            return self._home[table]
        except KeyError:
            raise UnknownRelationError(table) from None

    def server_of(self, table: str) -> RemoteDBMS:
        """The backend server owning ``table``."""
        return self._backends[self.home_of(table)]

    def backend(self, name: str) -> RemoteDBMS:
        """The backend server registered under ``name``."""
        try:
            return self._backends[name]
        except KeyError:
            raise KeyError(f"unknown backend {name!r}") from None

    def backends(self) -> list[str]:
        """All backend names, sorted."""
        return sorted(self._backends)

    def has(self, table: str) -> bool:
        """True when some backend owns ``table``."""
        return table in self._home

    def tables(self) -> list[str]:
        """Every owned table name, sorted."""
        return sorted(self._home)

    def tables_of(self, name: str) -> list[str]:
        """Tables owned by backend ``name``, sorted."""
        self.backend(name)
        return sorted(t for t, owner in self._home.items() if owner == name)
