"""The naive per-backend loose-coupling baseline.

The federation's counterpart of :class:`~repro.baselines.loose.LooseCoupling`:
every query is scattered to its home backends and joined on the
workstation, but with none of BrAID's machinery — no cache, no advice, no
cross-backend semijoin ship-bindings, no short-circuiting, no batching.
Each backend ships its full (selection-filtered) share of every query,
every time.  E19 measures what that costs against the federated CMS.
"""

from __future__ import annotations

from repro.common.metrics import CACHE_MISSES
from repro.logic.builtins import BuiltinRegistry
from repro.relational.relation import Relation
from repro.caql.eval import evaluate_psj, result_schema
from repro.caql.psj import PSJQuery
from repro.baselines.base import BaselineInterface
from repro.baselines.loose import _no_lookup
from repro.federation.interface import FederatedInterface


class NaiveFederation(BaselineInterface):
    """Loose coupling against a federation: scatter everything, reduce
    nothing."""

    name = "naive-federation"

    def __init__(
        self, interface: FederatedInterface, builtins: BuiltinRegistry | None = None
    ):
        if interface.semijoin:
            raise ValueError(
                "NaiveFederation needs a semijoin=False FederatedInterface "
                "(the whole point is shipping parts unreduced)"
            )
        self.remote = None  # no single server behind a federation
        self.clock = interface.clock
        self.metrics = interface.metrics
        self.profile = interface.local_profile
        self.builtins = builtins if builtins is not None else BuiltinRegistry()
        self.rdi = interface

    def _answer_psj(self, psj: PSJQuery) -> Relation:
        if psj.unsatisfiable:
            return Relation(result_schema(psj.name, psj.arity))
        if not psj.occurrences:
            return evaluate_psj(psj, _no_lookup)
        self.metrics.incr(CACHE_MISSES)
        return self.rdi.fetch(psj)
