"""Building a federation: backend specs → servers, catalog, interface.

One call wires the whole multi-backend remote layer:

* one :class:`~repro.remote.server.RemoteDBMS` per spec — its own engine
  (pure-Python or sqlite), its own :class:`~repro.common.clock.CostProfile`,
  its own fault policy, all sharing one :class:`SimClock` and one tracer,
* per-backend metrics scopes under one root ledger, so ``remote.*``
  counters aggregate at the root while each backend's share stays
  readable under ``metrics.scopes()[name]``,
* catalog statistics refreshed from engine contents at bootstrap
  (:meth:`RemoteDBMS.refresh_statistics`), so the cardinalities that
  drive semijoin costing are honest even after engine-side reloads,
* a :class:`~repro.federation.interface.FederatedInterface` with one
  resilient link (retry budget + circuit breaker) per backend.

The resulting :class:`Federation` quacks enough like a single server
(``clock``/``profile``/``metrics``/``tracer``/``set_fault_policy``) to
stand in the ``remote`` position of a
:class:`~repro.core.cms.CacheManagementSystem`; :meth:`Federation.cms`
builds one with the federated interface injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.common.clock import CostProfile, SimClock
from repro.common.metrics import Metrics
from repro.obs.tracer import Tracer
from repro.relational.relation import Relation
from repro.remote.engine import PurePythonEngine
from repro.remote.faults import FaultPolicy, RetryPolicy
from repro.remote.server import RemoteDBMS
from repro.federation.catalog import FederatedCatalog
from repro.federation.interface import FederatedInterface
from repro.federation.naive import NaiveFederation


@dataclass
class BackendSpec:
    """Declarative description of one federated backend."""

    #: Backend id: metrics scope, clock track suffix, trace tag.
    name: str
    #: Base tables this backend owns.
    tables: Sequence[Relation] = field(default_factory=tuple)
    #: ``"python"`` (deterministic pure-Python engine) or ``"sqlite"``.
    engine: str = "python"
    #: Per-backend cost profile (None = the federation default).
    profile: CostProfile | None = None
    #: Per-backend retry budget (None = the RDI default policy).
    retry: RetryPolicy | None = None
    #: Initial fault policy (None = healthy).
    faults: FaultPolicy | None = None


class Federation:
    """A bootstrapped multi-backend remote layer."""

    def __init__(
        self,
        catalog: FederatedCatalog,
        interface: FederatedInterface,
        clock: SimClock,
        metrics: Metrics,
        tracer,
        profile: CostProfile,
        buffer_size: int = 64,
    ):
        self.catalog = catalog
        self.interface = interface
        self.clock = clock
        #: The root ledger: aggregate ``remote.*`` totals; per-backend
        #: shares live in ``metrics.scopes()[backend]``.
        self.metrics = metrics
        self.tracer = tracer
        #: Workstation-side profile (cache work, local joins).
        self.profile = profile
        self._buffer_size = buffer_size

    @property
    def slo(self):
        """The interface's per-backend SLO monitor (None when unset)."""
        return self.interface.slo

    # -- backends ---------------------------------------------------------------
    def backends(self) -> list[str]:
        """All backend names, sorted."""
        return self.catalog.backends()

    def backend(self, name: str) -> RemoteDBMS:
        """The backend server registered under ``name``."""
        return self.catalog.backend(name)

    def set_backend_faults(self, name: str, faults: FaultPolicy | None) -> None:
        """Install (or clear) one backend's fault policy mid-run — e.g.
        turn a backend dark with ``FaultPolicy(permanent_rate=1.0)``."""
        self.catalog.backend(name).set_fault_policy(faults)

    def set_fault_policy(self, faults: FaultPolicy | None) -> None:
        """Install one policy on *every* backend (the single-server surface
        the differential runner drives)."""
        for name in self.catalog.backends():
            self.catalog.backend(name).set_fault_policy(faults)

    def refresh_statistics(self) -> None:
        """Re-sync every backend's catalog statistics with its engine."""
        for name in self.catalog.backends():
            self.catalog.backend(name).refresh_statistics()

    # -- clients ----------------------------------------------------------------
    def cms(
        self,
        capacity_bytes: int = 4_000_000,
        features=None,
        builtins=None,
        cache=None,
        pin_streams: bool = False,
    ):
        """A CMS over this federation: the federated interface is injected
        as the RDI and the planner costs remote parts per backend."""
        from repro.core.cms import CacheManagementSystem

        return CacheManagementSystem(
            self,
            capacity_bytes=capacity_bytes,
            features=features,
            builtins=builtins,
            cache=cache,
            metrics=self.metrics,
            pin_streams=pin_streams,
            tracer=self.tracer,
            rdi=self.interface,
            backend_of=self.interface.cost_profile_of,
        )

    def naive(self, builtins=None) -> NaiveFederation:
        """The naive per-backend loose-coupling baseline over the *same*
        backends (shared clock/metrics: measures marginal cost only; for a
        clean comparison build a second federation from the same specs)."""
        unreduced = FederatedInterface(
            self.catalog,
            buffer_size=self._buffer_size,
            metrics=self.metrics,
            tracer=self.tracer,
            local_profile=self.profile,
            semijoin=False,
        )
        return NaiveFederation(unreduced, builtins=builtins)


def build_federation(
    specs: Sequence[BackendSpec],
    clock: SimClock | None = None,
    metrics: Metrics | None = None,
    tracer=None,
    profile: CostProfile | None = None,
    buffer_size: int = 64,
    slo_policy=None,
) -> Federation:
    """Wire up servers, catalog, and interface from backend specs.

    ``slo_policy`` (an :class:`~repro.obs.slo.SLOPolicy`) attaches a
    per-backend latency SLO monitor to the interface: every backend round
    trip's simulated latency feeds a sliding window keyed by backend name.
    """
    if not specs:
        raise ValueError("a federation needs at least one backend spec")
    clock = clock if clock is not None else SimClock()
    metrics = metrics if metrics is not None else Metrics()
    tracer = tracer if tracer is not None else Tracer.disabled()
    profile = profile if profile is not None else CostProfile()
    catalog = FederatedCatalog()
    retries: dict[str, RetryPolicy] = {}
    for spec in specs:
        if spec.engine == "sqlite":
            from repro.remote.sqlite_backend import SqliteEngine

            engine = SqliteEngine()
        elif spec.engine == "python":
            engine = PurePythonEngine()
        else:
            raise ValueError(f"unknown engine {spec.engine!r} for {spec.name!r}")
        server = RemoteDBMS(
            engine=engine,
            clock=clock,
            profile=spec.profile if spec.profile is not None else profile,
            metrics=metrics.scope(spec.name),
            faults=spec.faults,
            tracer=tracer,
            name=spec.name,
        )
        for relation in spec.tables:
            server.load_table(relation)
        # Honest statistics at bootstrap: recomputed from what the engine
        # actually holds, not what register() happened to see.
        server.refresh_statistics()
        catalog.register(spec.name, server)
        if spec.retry is not None:
            retries[spec.name] = spec.retry
    slo = None
    if slo_policy is not None:
        from repro.obs.slo import SLOMonitor

        slo = SLOMonitor(slo_policy, clock, metrics, tracer)
    interface = FederatedInterface(
        catalog,
        buffer_size=buffer_size,
        retries=retries,
        metrics=metrics,
        tracer=tracer,
        local_profile=profile,
        slo=slo,
    )
    return Federation(
        catalog, interface, clock, metrics, tracer, profile, buffer_size
    )
