"""``repro.federation`` — the multi-backend remote layer.

BrAID behind N autonomous sources: a :class:`FederatedCatalog` maps each
base relation to its home backend, a :class:`FederatedInterface` presents
the single-RDI contract to the CMS while scatter-gathering across
backends (cross-backend joins as semijoin ship-bindings), and
:func:`build_federation` wires servers, per-backend metrics scopes, retry
budgets, and circuit breakers from declarative :class:`BackendSpec`\\ s.
See ``docs/federation.md``.
"""

from repro.federation.bootstrap import BackendSpec, Federation, build_federation
from repro.federation.catalog import FederatedCatalog
from repro.federation.interface import FederatedInterface, FederatedPart
from repro.federation.naive import NaiveFederation

__all__ = [
    "BackendSpec",
    "Federation",
    "FederatedCatalog",
    "FederatedInterface",
    "FederatedPart",
    "NaiveFederation",
    "build_federation",
]
