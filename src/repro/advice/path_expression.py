"""Path expressions — the second kind of advice (Section 4.2.2).

A path expression is "a prediction of relation accessing order, repetition,
and binding patterns" — an abstraction of the CAQL query sequence the IE
will emit during a session.  The grammar:

* a **query pattern** ``d_i(T1, ..., Tn)`` — an abstraction of one CAQL
  query against view ``d_i`` (arguments are annotated variables or
  constants, carried for display and binding prediction);
* a **sequence** ``( e1, e2, ... )^<lo,hi>`` — a precise ordering, repeated
  between ``lo`` and ``hi`` times, where ``hi`` may be a *cardinality
  reference* like ``|Y|`` (resolved only at run time, treated as unbounded
  for tracking);
* an **alternation** ``[ e1, e2, ... ]^s`` — an unordered set of which at
  most ``s`` members appear per activation (``s`` omitted = any number;
  ``s = 1`` means the members are mutually exclusive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.common.errors import AdviceError


@dataclass(frozen=True)
class Cardinality:
    """A symbolic repetition bound like ``|Y|`` (unknown until run time)."""

    variable: str

    def __str__(self) -> str:
        return f"|{self.variable}|"


#: An upper repetition bound: a number, a symbolic cardinality, or None (∞).
UpperBound = Union[int, Cardinality, None]


@dataclass(frozen=True)
class QueryPattern:
    """An abstraction of a single CAQL query: view name + argument sketch.

    ``args`` are display strings like ``"X^"``, ``"Y?"``, or a constant —
    the tracker matches on ``view`` only, but binding sketches feed the
    prefetch planner (a ``?`` argument means the concrete query will carry
    a constant the CMS cannot guess, so prefetching must generalize it).
    """

    view: str
    args: tuple[str, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.view
        return f"{self.view}({', '.join(self.args)})"

    def consumer_arg_positions(self) -> tuple[int, ...]:
        """Argument positions sketched as bound (trailing ``?``)."""
        return tuple(i for i, a in enumerate(self.args) if a.endswith("?"))


@dataclass(frozen=True)
class Sequence:
    """An ordered grouping with a repetition count ``<lo, hi>``."""

    elements: tuple["PathExpr", ...]
    lower: int = 1
    upper: UpperBound = 1

    def __post_init__(self) -> None:
        if not self.elements:
            raise AdviceError("a sequence needs at least one element")
        if self.lower < 0:
            raise AdviceError(f"sequence lower bound must be >= 0, got {self.lower}")
        if isinstance(self.upper, int) and self.upper < max(self.lower, 1):
            raise AdviceError(
                f"sequence upper bound {self.upper} below lower bound {self.lower}"
            )

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.elements)
        upper = "*" if self.upper is None else str(self.upper)
        return f"({inner})^<{self.lower},{upper}>"


@dataclass(frozen=True)
class Alternation:
    """An unordered grouping with an optional selection term."""

    members: tuple["PathExpr", ...]
    selection: int | None = None

    def __post_init__(self) -> None:
        if not self.members:
            raise AdviceError("an alternation needs at least one member")
        if self.selection is not None and not 1 <= self.selection <= len(self.members):
            raise AdviceError(
                f"selection term {self.selection} out of range for "
                f"{len(self.members)} members"
            )

    @property
    def mutually_exclusive(self) -> bool:
        """True when the selection term is 1."""
        return self.selection == 1

    def __str__(self) -> str:
        inner = ", ".join(str(m) for m in self.members)
        suffix = f"^{self.selection}" if self.selection is not None else ""
        return f"[{inner}]{suffix}"


PathExpr = Union[QueryPattern, Sequence, Alternation]


def iter_patterns(expr: PathExpr) -> Iterator[QueryPattern]:
    """Every query pattern in the expression, left to right."""
    if isinstance(expr, QueryPattern):
        yield expr
    elif isinstance(expr, Sequence):
        for element in expr.elements:
            yield from iter_patterns(element)
    elif isinstance(expr, Alternation):
        for member in expr.members:
            yield from iter_patterns(member)
    else:
        raise AdviceError(f"not a path expression: {expr!r}")


def view_names(expr: PathExpr) -> set[str]:
    """The set of view names mentioned anywhere in the expression."""
    return {p.view for p in iter_patterns(expr)}


def sequence_companions(expr: PathExpr, view: str) -> set[str]:
    """Views grouped in a sequence with ``view``.

    Section 5.3.1: "The sequence grouping in a path expression indicates
    that all items in that group are likely to be evaluated when the first
    item is evaluated" — these are the prefetch candidates once ``view``
    is observed.  The group used is the *smallest* enclosing sequence of
    each occurrence of ``view``; names reachable from that group only
    through an alternation are excluded (they may never appear).
    """
    companions: set[str] = set()

    def promised_names(node: PathExpr) -> set[str]:
        """Names promised when ``node``'s group iterates (stop at
        alternations: their members are optional)."""
        if isinstance(node, QueryPattern):
            return {node.view}
        if isinstance(node, Sequence):
            out: set[str] = set()
            for element in node.elements:
                out |= promised_names(element)
            return out
        return set()  # alternation: nothing promised

    def contains_directly(node: PathExpr) -> bool:
        """Does ``node`` contain the view with no intervening Sequence?"""
        if isinstance(node, QueryPattern):
            return node.view == view
        if isinstance(node, Alternation):
            return any(contains_directly(member) for member in node.members)
        return False  # a nested Sequence is a closer ancestor

    def walk(node: PathExpr) -> bool:
        if isinstance(node, QueryPattern):
            return node.view == view
        if isinstance(node, Alternation):
            return any(walk(member) for member in node.members)
        contains = False
        for element in node.elements:
            if contains_directly(element):
                # This sequence is the nearest sequence ancestor of (at
                # least one occurrence of) the view: pool its promises.
                for other in node.elements:
                    companions.update(promised_names(other))
                contains = True
            elif walk(element):
                contains = True  # a deeper sequence already pooled
        return contains

    walk(expr)
    companions.discard(view)
    return companions
