"""The advice language: what the IE sends the CMS at session start.

Section 3: "The typical mode of IE – CMS interaction consists of a set of
sessions.  At the beginning of each session, the IE submits a set of
advice.  This is followed by a sequence of CAQL queries."

An :class:`AdviceSet` bundles the three advice forms of Section 4.2:

* the **simplest advice** — an unordered list of the base relations
  relevant to the current AI query ("even this simplest form of advice
  will provide the CMS with significant knowledge");
* **view specifications** with binding annotations; and
* a **path expression** predicting the CAQL query sequence.

All parts are optional — the paper requires that "advice [is not] necessary
for the CMS to function".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AdviceError
from repro.advice.path_expression import PathExpr, view_names
from repro.advice.view_spec import ViewSpecification


@dataclass
class AdviceSet:
    """One session's worth of advice from the IE."""

    #: The unordered list of relevant base relations: (name, arity) pairs.
    relevant_relations: tuple[tuple[str, int], ...] = ()
    #: View specifications, keyed by view name.
    views: dict[str, ViewSpecification] = field(default_factory=dict)
    #: The predicted CAQL query sequence, if the IE produced one.
    path_expression: PathExpr | None = None

    def __post_init__(self) -> None:
        if self.path_expression is not None:
            unknown = view_names(self.path_expression) - set(self.views)
            if unknown:
                raise AdviceError(
                    f"path expression references undefined views: {sorted(unknown)}"
                )

    @classmethod
    def from_views(
        cls,
        views: list[ViewSpecification],
        path_expression: PathExpr | None = None,
        relevant_relations: tuple[tuple[str, int], ...] = (),
    ) -> "AdviceSet":
        """Bundle view specifications (checking for duplicates) into advice."""
        table: dict[str, ViewSpecification] = {}
        for view in views:
            if view.name in table:
                raise AdviceError(f"duplicate view specification: {view.name}")
            table[view.name] = view
        return cls(
            relevant_relations=relevant_relations,
            views=table,
            path_expression=path_expression,
        )

    def view(self, name: str) -> ViewSpecification | None:
        """The view specification named ``name``, or None."""
        return self.views.get(name)

    def is_empty(self) -> bool:
        """True when the advice carries no information at all."""
        return (
            not self.relevant_relations
            and not self.views
            and self.path_expression is None
        )

    def __str__(self) -> str:
        lines = []
        if self.relevant_relations:
            rels = ", ".join(f"{n}/{a}" for n, a in self.relevant_relations)
            lines.append(f"relevant: {rels}")
        for name in sorted(self.views):
            lines.append(str(self.views[name]))
        if self.path_expression is not None:
            lines.append(f"path: {self.path_expression}")
        return "\n".join(lines) if lines else "(no advice)"


#: An advice set carrying nothing — the no-advice baseline.
EMPTY_ADVICE = AdviceSet()
