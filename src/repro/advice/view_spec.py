"""View specifications — the first kind of advice (Section 4.2.1).

A view specification names a conjunctive definition the IE expects to query::

    d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?)    (R2)

Each answer position carries a *binding annotation*:

* ``^`` (**producer**): executing the corresponding CAQL query will produce
  bindings for this argument — advice *against* indexing it;
* ``?`` (**consumer**): the CAQL query will arrive with a constant here —
  "a prime candidate for indexing";
* unannotated: the position's role is unknown (antecedent-only variables
  are never annotated, since annotating them would imply an ordering).

The rule identifiers are "for human consumption rather than for use by the
CMS" (debugging and answer justification), and are carried verbatim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import AdviceError
from repro.logic.terms import Const
from repro.caql.ast import ConjunctiveQuery


class Binding(enum.Enum):
    """The annotation on one answer position of a view specification."""

    PRODUCER = "^"
    CONSUMER = "?"
    UNKNOWN = ""

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ViewSpecification:
    """A named view definition with per-position binding annotations."""

    definition: ConjunctiveQuery
    annotations: tuple[Binding, ...]
    rule_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.annotations) != self.definition.arity:
            raise AdviceError(
                f"view {self.name}: {len(self.annotations)} annotations for "
                f"{self.definition.arity} answer positions"
            )
        for term, annotation in zip(self.definition.answers, self.annotations):
            if isinstance(term, Const) and annotation is not Binding.UNKNOWN:
                raise AdviceError(
                    f"view {self.name}: constant answer position cannot be annotated"
                )

    @property
    def name(self) -> str:
        """The view's name (its definition's head symbol)."""
        return self.definition.name

    @property
    def arity(self) -> int:
        """Number of answer positions."""
        return self.definition.arity

    # -- annotation queries -------------------------------------------------------
    def consumer_positions(self) -> tuple[int, ...]:
        """Answer positions the IE will supply constants for (index these)."""
        return tuple(
            i for i, a in enumerate(self.annotations) if a is Binding.CONSUMER
        )

    def producer_positions(self) -> tuple[int, ...]:
        """Answer positions the CAQL query will produce bindings for."""
        return tuple(
            i for i, a in enumerate(self.annotations) if a is Binding.PRODUCER
        )

    def is_pure_producer(self) -> bool:
        """True when no position is a consumer.

        Section 4.2.1: "If a given relation is strictly a producer relation
        ... then the CMS will be well advised to produce the relation
        lazily and without any indexing."
        """
        return not self.consumer_positions()

    # -- rendering -----------------------------------------------------------------
    def __str__(self) -> str:
        head_args = []
        for term, annotation in zip(self.definition.answers, self.annotations):
            head_args.append(f"{term}{annotation}")
        body = " & ".join(str(l) for l in self.definition.literals)
        rules = f"  ({', '.join(self.rule_ids)})" if self.rule_ids else ""
        return f"{self.name}({', '.join(head_args)}) =def {body}{rules}"


def annotate(definition: ConjunctiveQuery, pattern: str, rule_ids: tuple[str, ...] = ()) -> ViewSpecification:
    """Build a view specification from a compact annotation pattern.

    ``pattern`` has one character per answer position: ``^`` producer,
    ``?`` consumer, ``.`` unknown — e.g. ``annotate(q, "^?")``.
    """
    table = {"^": Binding.PRODUCER, "?": Binding.CONSUMER, ".": Binding.UNKNOWN}
    try:
        annotations = tuple(table[ch] for ch in pattern)
    except KeyError as exc:
        raise AdviceError(f"bad annotation character in {pattern!r}") from exc
    return ViewSpecification(definition, annotations, rule_ids)
