"""Path expression tracking (Section 4.2.2).

"Path expression tracking deals with the problem of establishing an
association between a given CAQL query and a path expression. ... the CMS
must be able to keep track of the path expression element to which a given
CAQL query corresponds."

The tracker compiles a path expression to an NFA over view names and
simulates it as queries arrive:

* :meth:`PathTracker.observe` advances the automaton on one CAQL query;
* :meth:`PathTracker.predicted_next` is the set of views that may be
  requested next — the prefetch candidates;
* :meth:`PathTracker.distance_to` is the minimum number of future queries
  before a view could be needed — the replacement-priority signal (the
  paper's example: "d1 will be required for one of the next two queries.
  If the CMS needs to replace some cache element it is clear that d1 is
  not the best candidate").

Repetition bounds with symbolic upper limits (``|Y|``) are tracked as
unbounded loops; large concrete bounds are capped the same way (the NFA
stays small and prediction stays sound: a looser automaton only ever
*over*-predicts, never misses a successor).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.advice.path_expression import (
    Alternation,
    PathExpr,
    QueryPattern,
    Sequence,
)

#: Concrete repetition counts above this are tracked as unbounded.
EXPANSION_CAP = 12


@dataclass
class _NFA:
    transitions: dict[int, list[tuple[str, int]]] = field(
        default_factory=lambda: defaultdict(list)
    )
    epsilons: dict[int, list[int]] = field(default_factory=lambda: defaultdict(list))
    _next_state: int = 0

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def edge(self, src: int, symbol: str, dst: int) -> None:
        self.transitions[src].append((symbol, dst))

    def eps(self, src: int, dst: int) -> None:
        self.epsilons[src].append(dst)

    def closure(self, states: frozenset[int]) -> frozenset[int]:
        seen = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for nxt in self.epsilons.get(state, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    def step(self, states: frozenset[int], symbol: str) -> frozenset[int]:
        out = set()
        for state in states:
            for label, dst in self.transitions.get(state, ()):
                if label == symbol:
                    out.add(dst)
        return self.closure(frozenset(out))

    def outgoing_symbols(self, states: frozenset[int]) -> set[str]:
        out = set()
        for state in states:
            for label, _dst in self.transitions.get(state, ()):
                out.add(label)
        return out

    def step_any(self, states: frozenset[int]) -> frozenset[int]:
        out = set()
        for state in states:
            for _label, dst in self.transitions.get(state, ()):
                out.add(dst)
        return self.closure(frozenset(out))


def _compile(nfa: _NFA, expr: PathExpr) -> tuple[int, int]:
    """Thompson-style construction; returns (start, end) states."""
    if isinstance(expr, QueryPattern):
        start, end = nfa.new_state(), nfa.new_state()
        nfa.edge(start, expr.view, end)
        return start, end

    if isinstance(expr, Alternation):
        start, end = nfa.new_state(), nfa.new_state()
        for member in expr.members:
            m_start, m_end = _compile(nfa, member)
            nfa.eps(start, m_start)
            nfa.eps(m_end, end)
        return start, end

    if isinstance(expr, Sequence):
        def one_unit() -> tuple[int, int]:
            # Sequences have *prefix* semantics: the IE may abandon an
            # iteration after any element (a failing subgoal emits no
            # further queries — see the paper's valid sequences
            # "d1, d4, d1, ..." where d4 is not followed by d5), so every
            # element boundary gets an epsilon to the iteration end.
            u_start = current = nfa.new_state()
            element_ends = []
            for element in expr.elements:
                e_start, e_end = _compile(nfa, element)
                nfa.eps(current, e_start)
                current = e_end
                element_ends.append(e_end)
            for e_end in element_ends[:-1]:
                nfa.eps(e_end, current)
            return u_start, current

        start = nfa.new_state()
        current = start
        lower = min(expr.lower, EXPANSION_CAP)
        for _ in range(lower):
            u_start, u_end = one_unit()
            nfa.eps(current, u_start)
            current = u_end

        upper = expr.upper
        unbounded = upper is None or not isinstance(upper, int) or upper > EXPANSION_CAP
        end = nfa.new_state()
        if unbounded:
            # A Kleene loop after the required copies.
            u_start, u_end = one_unit()
            nfa.eps(current, u_start)
            nfa.eps(u_end, u_start)
            nfa.eps(u_end, end)
            nfa.eps(current, end)
        else:
            for _ in range(max(0, upper - lower)):
                u_start, u_end = one_unit()
                nfa.eps(current, u_start)
                nfa.eps(current, end)  # each extra copy is optional
                current = u_end
            nfa.eps(current, end)
        return start, end

    raise TypeError(f"not a path expression: {expr!r}")


class PathTracker:
    """Follows incoming CAQL queries through a path expression."""

    def __init__(self, expr: PathExpr):
        self.expression = expr
        self._nfa = _NFA()
        start, _end = _compile(self._nfa, expr)
        self._initial = self._nfa.closure(frozenset([start]))
        self._current = self._initial
        self.lost = False
        self.observed: list[str] = []

    # -- advancing -------------------------------------------------------------
    def observe(self, view: str) -> bool:
        """Advance on one query; returns False (and goes lost) when the
        query does not fit the prediction."""
        if self.lost:
            return False
        nxt = self._nfa.step(self._current, view)
        self.observed.append(view)
        if not nxt:
            self.lost = True
            self._current = frozenset()
            return False
        self._current = nxt
        return True

    def reset(self) -> None:
        """Re-anchor at the start of the expression (new session)."""
        self._current = self._initial
        self.lost = False
        self.observed = []

    # -- state snapshots (multi-session support) -------------------------------
    def state_key(self) -> tuple:
        """A canonical, hashable fingerprint of the tracker's position.

        Two trackers over the same expression that have observed the same
        query sequence produce equal keys, so a server can assert that a
        suspended-and-resumed session is exactly where it left off (and a
        benchmark can fingerprint per-session state across runs).
        """
        return (tuple(sorted(self._current)), self.lost, tuple(self.observed))

    def clone(self) -> "PathTracker":
        """An independent tracker at the same position.

        The NFA is shared (it is immutable after construction); only the
        simulation state is copied.  Used when one session's advice is
        speculatively advanced without disturbing the live tracker.
        """
        twin = PathTracker.__new__(PathTracker)
        twin.expression = self.expression
        twin._nfa = self._nfa
        twin._initial = self._initial
        twin._current = self._current
        twin.lost = self.lost
        twin.observed = list(self.observed)
        return twin

    # -- prediction --------------------------------------------------------------
    def predicted_next(self) -> set[str]:
        """Views that may be requested by the very next query."""
        return self._nfa.outgoing_symbols(self._current)

    def expects(self, view: str) -> bool:
        """True when ``view`` may be the very next query."""
        return view in self.predicted_next()

    def distance_to(self, view: str, horizon: int = 50) -> int | None:
        """Minimum number of future queries before ``view`` could appear.

        1 means "could be the very next query".  None means the view is
        unreachable from the current position (a safe eviction candidate).
        """
        states = self._current
        seen: set[frozenset[int]] = set()
        for depth in range(1, horizon + 1):
            if view in self._nfa.outgoing_symbols(states):
                return depth
            states = self._nfa.step_any(states)
            if not states or states in seen:
                return None
            seen.add(states)
        return None
