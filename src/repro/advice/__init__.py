"""The advice language: view specifications, path expressions, tracking."""

from repro.advice.language import EMPTY_ADVICE, AdviceSet
from repro.advice.path_expression import (
    Alternation,
    Cardinality,
    PathExpr,
    QueryPattern,
    Sequence,
    iter_patterns,
    sequence_companions,
    view_names,
)
from repro.advice.tracker import EXPANSION_CAP, PathTracker
from repro.advice.view_spec import Binding, ViewSpecification, annotate

__all__ = [
    "AdviceSet",
    "Alternation",
    "Binding",
    "Cardinality",
    "EMPTY_ADVICE",
    "EXPANSION_CAP",
    "PathExpr",
    "PathTracker",
    "QueryPattern",
    "Sequence",
    "ViewSpecification",
    "annotate",
    "iter_patterns",
    "sequence_companions",
    "view_names",
]
